package transport

import (
	"fmt"
	"net"
	"testing"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/wire"
)

func newBroker(t *testing.T, id string) *broker.Broker {
	t.Helper()
	b, err := broker.New(broker.Config{ID: id})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func mustSub(t *testing.T, id uint64, subscriber, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, subscriber, subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// waitDeliveries polls for want deliveries within a deadline.
func waitDeliveries(t *testing.T, ch <-chan broker.Delivery, want int) []broker.Delivery {
	t.Helper()
	var got []broker.Delivery
	deadline := time.After(5 * time.Second)
	for len(got) < want {
		select {
		case d := <-ch:
			got = append(got, d)
		case <-deadline:
			t.Fatalf("timed out with %d/%d deliveries", len(got), want)
		}
	}
	return got
}

func TestPipeBasics(t *testing.T) {
	a, b := Pipe()
	defer a.Close()
	defer b.Close()
	f := wire.UnsubscribeFrame(7)
	if err := a.Send(f); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.SubID != 7 {
		t.Errorf("frame payload lost: %+v", got)
	}
	a.Close()
	if err := a.Send(f); err == nil {
		t.Error("send on closed conn succeeded")
	}
	if _, err := b.Recv(); err == nil {
		t.Error("recv after peer close succeeded with no pending frames")
	}
}

func TestTwoServersOverPipe(t *testing.T) {
	dels := make(chan broker.Delivery, 16)
	s1 := NewServer(newBroker(t, "b1"), nil)
	s2 := NewServer(newBroker(t, "b2"), func(d broker.Delivery) { dels <- d })
	defer s1.Shutdown()
	defer s2.Shutdown()

	c1, c2 := Pipe()
	if _, err := s1.AttachLink(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AttachLink(c2); err != nil {
		t.Fatal(err)
	}

	// Subscribe at s2; publish at s1; delivery surfaces at s2's callback.
	if _, err := s2.Subscribe(mustSub(t, 1, "eve", `x = 1`)); err != nil {
		t.Fatal(err)
	}
	// Subscription forwarding is asynchronous; wait for s1 to learn it.
	waitFor(t, func() bool { return s1.Stats().RemoteSubs == 1 })

	s1.Publish(event.Build(1).Int("x", 1).Msg())
	got := waitDeliveries(t, dels, 1)
	if got[0].Subscriber != "eve" || got[0].SubID != 1 {
		t.Errorf("delivery = %+v", got[0])
	}

	// Non-matching event: give the network a moment, then assert nothing.
	s1.Publish(event.Build(2).Int("x", 2).Msg())
	time.Sleep(50 * time.Millisecond)
	select {
	case d := <-dels:
		t.Errorf("unexpected delivery %+v", d)
	default:
	}
}

func TestThreeBrokerLineOverTCP(t *testing.T) {
	dels := make(chan broker.Delivery, 16)
	s1 := NewServer(newBroker(t, "b1"), func(d broker.Delivery) { dels <- d })
	s2 := NewServer(newBroker(t, "b2"), nil)
	s3 := NewServer(newBroker(t, "b3"), nil)
	defer s1.Shutdown()
	defer s2.Shutdown()
	defer s3.Shutdown()

	addr2a, err := s2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.DialLink(addr2a); err != nil {
		t.Fatal(err)
	}
	addr2b, err := s3.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s2.DialLink(addr2b); err != nil {
		t.Fatal(err)
	}

	if _, err := s1.Subscribe(mustSub(t, 9, "alice", `category = "scifi" and price <= 25`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s3.Stats().RemoteSubs == 1 })

	s3.Publish(event.Build(1).Str("category", "scifi").Num("price", 10).Msg())
	got := waitDeliveries(t, dels, 1)
	if got[0].Subscriber != "alice" {
		t.Errorf("delivery = %+v", got[0])
	}
}

func TestClientSessionOverTCP(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()

	// The server listener is for broker links; clients attach explicitly.
	// Use a TCP pair via a loopback listener.
	ln, err := newLoopbackPair(t, srv)
	if err != nil {
		t.Fatal(err)
	}
	client := NewClient("carol", ln)

	if err := client.Subscribe(1, subscription.MustParse(`x >= 5`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().LocalSubs == 1 })

	if err := client.Publish(event.Build(1).Int("x", 7).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-client.Notifications():
		if v, _ := m.Get("x"); v.AsInt() != 7 {
			t.Errorf("notification = %s", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("notification timed out")
	}

	if err := client.Unsubscribe(1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return srv.Stats().LocalSubs == 0 })
	client.Close()
}

func TestClientMustUseOwnName(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()
	a, b := Pipe()
	if err := srv.AttachClient("carol", b); err != nil {
		t.Fatal(err)
	}
	// Frame subscribing under another name must kill the session.
	s := mustSub(t, 1, "mallory", `x = 1`)
	if err := a.Send(wire.SubscribeFrame(s)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool {
		_, err := a.Recv()
		return err != nil
	})
}

func TestDuplicateClientRejected(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	defer srv.Shutdown()
	_, b1 := Pipe()
	_, b2 := Pipe()
	if err := srv.AttachClient("carol", b1); err != nil {
		t.Fatal(err)
	}
	if err := srv.AttachClient("carol", b2); err == nil {
		t.Error("duplicate client name accepted")
	}
}

func TestShutdownIdempotentAndRejectsNewWork(t *testing.T) {
	srv := NewServer(newBroker(t, "b1"), nil)
	if _, err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	srv.Shutdown()
	srv.Shutdown() // idempotent
	if _, err := srv.Subscribe(mustSub(t, 1, "x", `a = 1`)); err == nil {
		t.Error("subscribe after shutdown succeeded")
	}
	a, _ := Pipe()
	if _, err := srv.AttachLink(a); err == nil {
		t.Error("attach after shutdown succeeded")
	}
	if err := srv.AttachClient("c", a); err == nil {
		t.Error("attach client after shutdown succeeded")
	}
}

func TestServerSurvivesPeerDisconnect(t *testing.T) {
	s1 := NewServer(newBroker(t, "b1"), nil)
	s2 := NewServer(newBroker(t, "b2"), nil)
	defer s1.Shutdown()

	c1, c2 := Pipe()
	if _, err := s1.AttachLink(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AttachLink(c2); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Subscribe(mustSub(t, 1, "x", `a = 1`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.Stats().RemoteSubs == 1 })

	// Peer goes away; the remaining server keeps serving local work.
	s2.Shutdown()
	time.Sleep(20 * time.Millisecond)
	s1.Publish(event.Build(1).Int("a", 1).Msg())
	if _, err := s1.Subscribe(mustSub(t, 2, "y", `b = 2`)); err != nil {
		t.Fatal(err)
	}
}

func TestPruneThroughServer(t *testing.T) {
	s1 := NewServer(newBroker(t, "b1"), nil)
	s2 := NewServer(newBroker(t, "b2"), nil)
	defer s1.Shutdown()
	defer s2.Shutdown()
	c1, c2 := Pipe()
	s1.AttachLink(c1)
	s2.AttachLink(c2)
	if _, err := s2.Subscribe(mustSub(t, 1, "eve", `a = 1 and b = 2`)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s1.Stats().RemoteSubs == 1 })
	if n := s1.Prune(1); n != 1 {
		t.Errorf("Prune = %d, want 1", n)
	}
	if st := s1.Stats(); st.PruningsDone != 1 {
		t.Errorf("PruningsDone = %d", st.PruningsDone)
	}
}

// waitFor polls cond until true or the deadline expires.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// newLoopbackPair listens on loopback, attaches the accepted server side as
// a client session named carol, and returns the dialing side.
func newLoopbackPair(t *testing.T, srv *Server) (Conn, error) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		done <- srv.AttachClient("carol", NewTCPConn(nc))
	}()
	conn, err := Dial(ln.Addr().String())
	if err != nil {
		return nil, err
	}
	if err := <-done; err != nil {
		return nil, err
	}
	return conn, nil
}

// recordConn is a test Conn that records sent frames (or fails every send).
type recordConn struct {
	mu   chanMutex
	sent []wire.Frame
	fail bool
}

func newRecordConn(fail bool) *recordConn {
	return &recordConn{mu: make(chanMutex, 1), fail: fail}
}

func (c *recordConn) Send(f wire.Frame) error {
	c.mu.lock()
	defer c.mu.unlock()
	if c.fail {
		c.sent = append(c.sent, wire.Frame{}) // count the attempt
		return fmt.Errorf("broken")
	}
	c.sent = append(c.sent, f)
	return nil
}

func (c *recordConn) sentCount() int {
	c.mu.lock()
	defer c.mu.unlock()
	return len(c.sent)
}

func (c *recordConn) Recv() (wire.Frame, error) { return wire.Frame{}, fmt.Errorf("recordConn") }
func (c *recordConn) Close() error              { return nil }

func TestOutboxOrderAndClose(t *testing.T) {
	conn := newRecordConn(false)
	o := newOutbox(conn)
	doneDrain := make(chan struct{})
	go func() {
		o.drain()
		close(doneDrain)
	}()
	for i := 0; i < 100; i++ {
		o.push(outItem{f: wire.UnsubscribeFrame(uint64(i))})
	}
	waitFor(t, func() bool { return conn.sentCount() == 100 })
	o.close()
	<-doneDrain
	conn.mu.lock()
	defer conn.mu.unlock()
	for i, f := range conn.sent {
		if f.SubID != uint64(i) {
			t.Fatalf("out of order at %d: %d", i, f.SubID)
		}
	}
	if o.push(outItem{f: wire.UnsubscribeFrame(0)}) {
		t.Error("push after close accepted")
	}
}

func TestOutboxStopsWritingOnSendError(t *testing.T) {
	conn := newRecordConn(true)
	o := newOutbox(conn)
	// Both items land in the queue before the writer starts; the first send
	// fails, so the writer must not attempt the second — but it must keep
	// consuming (and releasing) the backlog until close.
	o.push(outItem{f: wire.UnsubscribeFrame(1)})
	o.push(outItem{f: wire.UnsubscribeFrame(2)})
	doneDrain := make(chan struct{})
	go func() {
		o.drain()
		close(doneDrain)
	}()
	waitFor(t, func() bool { return conn.sentCount() >= 1 })
	// A later push on the broken connection is swallowed without a send.
	o.push(outItem{f: wire.UnsubscribeFrame(3)})
	o.close()
	<-doneDrain
	if n := conn.sentCount(); n != 1 {
		t.Errorf("drain attempted %d sends, want 1 (stop writing on error)", n)
	}
}

// chanMutex is a tiny test helper mutex usable inside closures.
type chanMutex chan struct{}

func (m chanMutex) lock()   { m <- struct{}{} }
func (m chanMutex) unlock() { <-m }
