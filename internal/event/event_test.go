package event

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	tests := []struct {
		name string
		v    Value
		kind Kind
	}{
		{"int", Int(42), KindInt},
		{"float", Float(3.5), KindFloat},
		{"string", String("x"), KindString},
		{"bool", Bool(true), KindBool},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if tt.v.Kind() != tt.kind {
				t.Errorf("Kind() = %v, want %v", tt.v.Kind(), tt.kind)
			}
			if !tt.v.IsValid() {
				t.Error("IsValid() = false for a constructed value")
			}
		})
	}
	if Int(42).AsInt() != 42 {
		t.Error("AsInt round-trip failed")
	}
	if Float(3.5).AsFloat() != 3.5 {
		t.Error("AsFloat round-trip failed")
	}
	if String("abc").AsString() != "abc" {
		t.Error("AsString round-trip failed")
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("AsBool round-trip failed")
	}
	if (Value{}).IsValid() {
		t.Error("zero Value reports valid")
	}
}

func TestValueEqualCrossNumeric(t *testing.T) {
	if !Int(20).Equal(Float(20.0)) {
		t.Error("Int(20) != Float(20.0)")
	}
	if Int(20).Equal(Float(20.5)) {
		t.Error("Int(20) == Float(20.5)")
	}
	if Int(1).Equal(Bool(true)) {
		t.Error("Int(1) == Bool(true); bool must not compare numerically")
	}
	if String("1").Equal(Int(1)) {
		t.Error(`String("1") == Int(1)`)
	}
	if !String("a").Equal(String("a")) {
		t.Error("identical strings unequal")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b    Value
		cmp     int
		ordered bool
	}{
		{Int(1), Int(2), -1, true},
		{Int(2), Int(2), 0, true},
		{Int(3), Int(2), 1, true},
		{Int(1), Float(1.5), -1, true},
		{Float(2.5), Int(2), 1, true},
		{String("a"), String("b"), -1, true},
		{String("b"), String("b"), 0, true},
		{String("a"), Int(1), 0, false},
		{Bool(true), Bool(false), 0, false},
		{Int(1), Bool(true), 0, false},
	}
	for _, tt := range tests {
		cmp, ok := tt.a.Compare(tt.b)
		if ok != tt.ordered || (ok && cmp != tt.cmp) {
			t.Errorf("Compare(%v, %v) = (%d, %v), want (%d, %v)", tt.a, tt.b, cmp, ok, tt.cmp, tt.ordered)
		}
	}
}

func TestValueStringAndParseLiteralRoundTrip(t *testing.T) {
	vals := []Value{
		Int(0), Int(-17), Int(1 << 40),
		Float(2.5), Float(-0.125),
		String(""), String("Dune"), String(`with "quotes"`),
		Bool(true), Bool(false),
	}
	for _, v := range vals {
		got, err := ParseLiteral(v.String())
		if err != nil {
			t.Errorf("ParseLiteral(%s): %v", v.String(), err)
			continue
		}
		if !got.Equal(v) || got.Kind() != v.Kind() {
			t.Errorf("round trip %s -> %s", v, got)
		}
	}
}

func TestParseLiteralSingleQuotes(t *testing.T) {
	v, err := ParseLiteral("'hello'")
	if err != nil {
		t.Fatal(err)
	}
	if v.AsString() != "hello" {
		t.Errorf("got %q", v.AsString())
	}
}

func TestParseLiteralErrors(t *testing.T) {
	for _, tok := range []string{"", `"unterminated`, "12abc", "'"} {
		if _, err := ParseLiteral(tok); err == nil {
			t.Errorf("ParseLiteral(%q) succeeded, want error", tok)
		}
	}
}

func TestValueSize(t *testing.T) {
	if Int(1).Size() != 9 {
		t.Errorf("Int size = %d, want 9", Int(1).Size())
	}
	if String("abcd").Size() != 13 {
		t.Errorf("String size = %d, want 13", String("abcd").Size())
	}
}

func TestNewMessageSortsAndLooksUp(t *testing.T) {
	m, err := NewMessage(7,
		Attr{Name: "price", Value: Float(12.5)},
		Attr{Name: "author", Value: String("Herbert")},
		Attr{Name: "bids", Value: Int(3)},
	)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 3 {
		t.Fatalf("Len = %d", m.Len())
	}
	for i := 1; i < len(m.Attrs); i++ {
		if m.Attrs[i-1].Name >= m.Attrs[i].Name {
			t.Fatalf("attributes not sorted: %v", m.Attrs)
		}
	}
	if v, ok := m.Get("author"); !ok || v.AsString() != "Herbert" {
		t.Errorf("Get(author) = %v, %v", v, ok)
	}
	if _, ok := m.Get("missing"); ok {
		t.Error("Get(missing) reported present")
	}
	if !m.Has("bids") || m.Has("nope") {
		t.Error("Has misbehaves")
	}
}

func TestNewMessageRejectsDuplicates(t *testing.T) {
	_, err := NewMessage(1,
		Attr{Name: "a", Value: Int(1)},
		Attr{Name: "a", Value: Int(2)},
	)
	if err == nil {
		t.Fatal("duplicate attribute accepted")
	}
}

func TestNewMessageRejectsInvalid(t *testing.T) {
	if _, err := NewMessage(1, Attr{Name: "", Value: Int(1)}); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewMessage(1, Attr{Name: "a"}); err == nil {
		t.Error("unset value accepted")
	}
}

func TestBuilder(t *testing.T) {
	m := Build(9).
		Str("title", "Dune").
		Num("price", 10.5).
		Int("bids", 4).
		Flag("signed", true).
		Msg()
	if m.ID != 9 || m.Len() != 4 {
		t.Fatalf("unexpected message %v", m)
	}
	if v, _ := m.Get("signed"); !v.AsBool() {
		t.Error("flag lost")
	}
	// Last set wins.
	m2 := Build(1).Int("x", 1).Int("x", 2).Msg()
	if v, _ := m2.Get("x"); v.AsInt() != 2 {
		t.Errorf("duplicate set kept first value: %v", v)
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := Build(1).Int("a", 1).Msg()
	c := m.Clone()
	c.Attrs[0].Value = Int(99)
	if v, _ := m.Get("a"); v.AsInt() != 1 {
		t.Error("Clone shares attribute storage")
	}
}

func TestMessageString(t *testing.T) {
	m := Build(3).Str("t", "x").Int("n", 2).Msg()
	if got := m.String(); got != `{id=3 n=2 t="x"}` {
		t.Errorf("String() = %s", got)
	}
}

func TestGetQuickNeverPanics(t *testing.T) {
	m := Build(1).Int("alpha", 1).Int("beta", 2).Int("gamma", 3).Msg()
	f := func(name string) bool {
		v, ok := m.Get(name)
		if ok {
			return v.IsValid()
		}
		return !v.IsValid()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
