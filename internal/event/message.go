package event

import (
	"fmt"
	"sort"
	"strings"
)

// Attr is a single attribute–value pair of an event message.
type Attr struct {
	Name  string
	Value Value
}

// Message is an event message: an identifier plus a set of attribute–value
// pairs. Attributes are kept sorted by name so lookups are O(log n) and the
// wire encoding is canonical. Construct messages with NewMessage or a
// Builder; a manually assembled Message must call Normalize before use.
type Message struct {
	ID    uint64
	Attrs []Attr
}

// NewMessage builds a message from the given attributes. Attributes are
// copied, sorted, and checked for duplicates.
func NewMessage(id uint64, attrs ...Attr) (*Message, error) {
	m := &Message{ID: id, Attrs: make([]Attr, len(attrs))}
	copy(m.Attrs, attrs)
	if err := m.Normalize(); err != nil {
		return nil, err
	}
	return m, nil
}

// Normalize sorts the attribute list and validates it: names must be
// non-empty and unique, values must be set.
func (m *Message) Normalize() error {
	sort.Slice(m.Attrs, func(i, j int) bool { return m.Attrs[i].Name < m.Attrs[j].Name })
	for i, a := range m.Attrs {
		if a.Name == "" {
			return fmt.Errorf("event: message %d has an attribute with an empty name", m.ID)
		}
		if !a.Value.IsValid() {
			return fmt.Errorf("event: message %d attribute %q has no value", m.ID, a.Name)
		}
		if i > 0 && m.Attrs[i-1].Name == a.Name {
			return fmt.Errorf("event: message %d has duplicate attribute %q", m.ID, a.Name)
		}
	}
	return nil
}

// Get returns the value of the named attribute and whether it is present.
func (m *Message) Get(name string) (Value, bool) {
	i := sort.Search(len(m.Attrs), func(i int) bool { return m.Attrs[i].Name >= name })
	if i < len(m.Attrs) && m.Attrs[i].Name == name {
		return m.Attrs[i].Value, true
	}
	return Value{}, false
}

// Has reports whether the named attribute is present.
func (m *Message) Has(name string) bool {
	_, ok := m.Get(name)
	return ok
}

// Len returns the number of attributes.
func (m *Message) Len() int { return len(m.Attrs) }

// Clone returns a deep copy of the message.
func (m *Message) Clone() *Message {
	c := &Message{ID: m.ID, Attrs: make([]Attr, len(m.Attrs))}
	copy(c.Attrs, m.Attrs)
	return c
}

// String renders the message for diagnostics, e.g.
// {id=3 price=12.5 title="Dune"}.
func (m *Message) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "{id=%d", m.ID)
	for _, a := range m.Attrs {
		fmt.Fprintf(&b, " %s=%s", a.Name, a.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Builder assembles a message fluently:
//
//	msg := event.Build(1).Str("title", "Dune").Num("price", 12.5).Msg()
//
// Duplicate attribute names keep the last value set.
type Builder struct {
	id    uint64
	attrs map[string]Value
}

// Build starts a new builder for a message with the given identifier.
func Build(id uint64) *Builder {
	return &Builder{id: id, attrs: make(map[string]Value)}
}

// Set adds an attribute with an explicit Value.
func (b *Builder) Set(name string, v Value) *Builder {
	b.attrs[name] = v
	return b
}

// Str adds a string attribute.
func (b *Builder) Str(name, v string) *Builder { return b.Set(name, String(v)) }

// Int adds an integer attribute.
func (b *Builder) Int(name string, v int64) *Builder { return b.Set(name, Int(v)) }

// Num adds a floating-point attribute.
func (b *Builder) Num(name string, v float64) *Builder { return b.Set(name, Float(v)) }

// Flag adds a boolean attribute.
func (b *Builder) Flag(name string, v bool) *Builder { return b.Set(name, Bool(v)) }

// Msg finalizes the message. It panics only on internal inconsistency, which
// the builder construction rules make impossible; the error path exists for
// direct Message construction.
func (b *Builder) Msg() *Message {
	attrs := make([]Attr, 0, len(b.attrs))
	for name, v := range b.attrs {
		attrs = append(attrs, Attr{Name: name, Value: v})
	}
	m := &Message{ID: b.id, Attrs: attrs}
	if err := m.Normalize(); err != nil {
		// Unreachable: the map guarantees unique non-empty names and the
		// setters guarantee valid values.
		panic("event: builder produced invalid message: " + err.Error())
	}
	return m
}
