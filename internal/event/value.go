// Package event defines the attribute–value pair event model assumed by the
// paper (§2.1): an event message is a set of attribute–value pairs, and
// subscriptions place predicates on those attributes.
package event

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the value types supported by the model. Numeric kinds
// compare with each other; strings and booleans only compare for (in)equality
// and the string-specific operators.
type Kind uint8

// Value kinds. KindInvalid is deliberately the zero value so an unset Value
// is detectable.
const (
	KindInvalid Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the lower-case kind name used in the text subscription
// syntax and diagnostics.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a typed attribute value. The struct is plain data: it is copied
// freely, compared with ==, and usable as a map key, which the filtering
// engine relies on for predicate deduplication.
type Value struct {
	kind Kind
	num  int64   // KindInt payload, also 0/1 for KindBool
	flt  float64 // KindFloat payload
	str  string  // KindString payload
}

// Int returns an integer value.
func Int(v int64) Value { return Value{kind: KindInt, num: v} }

// Float returns a floating-point value.
func Float(v float64) Value { return Value{kind: KindFloat, flt: v} }

// String returns a string value.
func String(v string) Value { return Value{kind: KindString, str: v} }

// Bool returns a boolean value.
func Bool(v bool) Value {
	var n int64
	if v {
		n = 1
	}
	return Value{kind: KindBool, num: n}
}

// Kind reports the value's type.
func (v Value) Kind() Kind { return v.kind }

// IsValid reports whether the value has been set.
func (v Value) IsValid() bool { return v.kind != KindInvalid }

// AsInt returns the integer payload. It is only meaningful for KindInt.
func (v Value) AsInt() int64 { return v.num }

// AsFloat returns the floating-point payload. It is only meaningful for
// KindFloat.
func (v Value) AsFloat() float64 { return v.flt }

// AsString returns the string payload. It is only meaningful for KindString.
func (v Value) AsString() string { return v.str }

// AsBool returns the boolean payload. It is only meaningful for KindBool.
func (v Value) AsBool() bool { return v.num != 0 }

// Numeric reports whether the value participates in ordered comparisons, and
// if so returns its value as a float64. Integers up to 2^53 convert exactly,
// which covers every workload in this repository; the wire codec preserves
// full int64 precision regardless.
func (v Value) Numeric() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.num), true
	case KindFloat:
		return v.flt, true
	default:
		return 0, false
	}
}

// Equal reports semantic equality: values of different kinds are unequal
// except int/float pairs, which compare numerically (price = 20 must match an
// event carrying 20.0).
func (v Value) Equal(o Value) bool {
	if v.kind == o.kind {
		return v == o
	}
	a, aok := v.Numeric()
	b, bok := o.Numeric()
	return aok && bok && a == b
}

// Compare orders two values. It returns -1, 0, or +1 and ok=true when the
// values are comparable (both numeric, both strings), and ok=false otherwise.
// Booleans are deliberately unordered.
func (v Value) Compare(o Value) (cmp int, ok bool) {
	if a, aok := v.Numeric(); aok {
		b, bok := o.Numeric()
		if !bok {
			return 0, false
		}
		switch {
		case a < b:
			return -1, true
		case a > b:
			return 1, true
		default:
			return 0, true
		}
	}
	if v.kind == KindString && o.kind == KindString {
		switch {
		case v.str < o.str:
			return -1, true
		case v.str > o.str:
			return 1, true
		default:
			return 0, true
		}
	}
	return 0, false
}

// String formats the value for diagnostics and the subscription text syntax.
// Strings are quoted, and integral floats keep a decimal point, so every
// finite value round-trips through ParseLiteral with its kind intact.
func (v Value) String() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.num, 10)
	case KindFloat:
		s := strconv.FormatFloat(v.flt, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eENI") { // decimal, exponent, NaN, Inf
			s += ".0"
		}
		return s
	case KindString:
		return strconv.Quote(v.str)
	case KindBool:
		return strconv.FormatBool(v.num != 0)
	default:
		return "<invalid>"
	}
}

// Size returns the approximate in-memory footprint of the value in bytes,
// used by the memory heuristic's mem≈ estimate.
func (v Value) Size() int {
	// kind byte + 8-byte payload; strings add their contents.
	s := 9
	if v.kind == KindString {
		s += len(v.str)
	}
	return s
}

// ParseLiteral converts a text token into a Value: quoted text is a string,
// true/false are booleans, integers and floats are numeric. It is the
// inverse of String for all valid values.
func ParseLiteral(tok string) (Value, error) {
	if tok == "" {
		return Value{}, fmt.Errorf("event: empty literal")
	}
	if tok[0] == '"' || tok[0] == '\'' {
		s, err := unquote(tok)
		if err != nil {
			return Value{}, err
		}
		return String(s), nil
	}
	switch tok {
	case "true":
		return Bool(true), nil
	case "false":
		return Bool(false), nil
	}
	if i, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return Int(i), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// Non-finite values have degenerate comparison semantics; the
			// text format only admits finite numbers.
			return Value{}, fmt.Errorf("event: non-finite literal %q", tok)
		}
		return Float(f), nil
	}
	return Value{}, fmt.Errorf("event: cannot parse literal %q", tok)
}

func unquote(tok string) (string, error) {
	if len(tok) < 2 || tok[0] != tok[len(tok)-1] {
		return "", fmt.Errorf("event: unterminated string literal %q", tok)
	}
	if tok[0] == '\'' {
		// strconv.Unquote treats single quotes as rune literals; normalize.
		tok = "\"" + tok[1:len(tok)-1] + "\""
	}
	s, err := strconv.Unquote(tok)
	if err != nil {
		return "", fmt.Errorf("event: bad string literal %q: %w", tok, err)
	}
	return s, nil
}
