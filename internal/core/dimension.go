// Package core implements the paper's contribution: dimension-based
// subscription pruning (§3). An Engine tracks the registered (non-local)
// subscriptions of a broker, rates every possible pruning of each with three
// heuristics — selectivity degradation Δ≈sel, memory improvement Δ≈mem, and
// throughput improvement Δ≈eff — and serves prunings most-effective-first
// for the configured dimension of optimization via a priority queue.
package core

import "fmt"

// Dimension selects the optimization target of §3: which heuristic ranks
// prunings first. The remaining heuristics break ties in the fixed orders of
// §3.4.
type Dimension int

// Optimization dimensions.
const (
	// DimNetwork minimizes the growth in matched/forwarded events
	// (network-based pruning, §3.1: primary key Δ≈sel).
	DimNetwork Dimension = iota + 1
	// DimMemory maximizes the per-step reduction of routing-table bytes
	// (memory-based pruning, §3.2: primary key Δ≈mem).
	DimMemory
	// DimThroughput keeps the filter engine's pmin gate strong
	// (throughput-based pruning, §3.3: primary key Δ≈eff).
	DimThroughput
)

// String names the dimension with the paper's curve labels.
func (d Dimension) String() string {
	switch d {
	case DimNetwork:
		return "sel"
	case DimMemory:
		return "mem"
	case DimThroughput:
		return "eff"
	default:
		return fmt.Sprintf("dimension(%d)", int(d))
	}
}

// Valid reports whether d is a known dimension.
func (d Dimension) Valid() bool {
	return d == DimNetwork || d == DimMemory || d == DimThroughput
}

// Rating carries all three heuristic values of one candidate pruning, so a
// single rating can be ranked under any dimension order.
type Rating struct {
	// Sel is Δ≈sel(s₀, s′) ≥ 0: the estimated selectivity degradation
	// relative to the *originally registered* subscription s₀ (§3.1 keeps
	// the comparison anchored at s₀ so accumulated degradation is charged to
	// later prunings). Smaller is better.
	Sel float64
	// Mem is Δ≈mem(s, s′) > 0: the byte reduction relative to the *current*
	// tree (§3.2 charges each step only its own effect). Larger is better.
	Mem int
	// Eff is Δ≈eff(s₀, s′) = pmin(s′) − pmin(s₀) ≤ 0, again anchored at the
	// original subscription (§3.3). Larger (closer to zero) is better.
	Eff int
}

// dimOrders are the tie-break orders of §3.4.
var dimOrders = map[Dimension][3]Dimension{
	DimNetwork:    {DimNetwork, DimThroughput, DimMemory},
	DimMemory:     {DimMemory, DimNetwork, DimThroughput},
	DimThroughput: {DimThroughput, DimNetwork, DimMemory},
}

// compareComponent orders a single heuristic component: negative when a is
// the more effective pruning on that component.
func compareComponent(a, b Rating, d Dimension) int {
	switch d {
	case DimNetwork: // smaller degradation is better
		switch {
		case a.Sel < b.Sel:
			return -1
		case a.Sel > b.Sel:
			return 1
		}
	case DimMemory: // larger reduction is better
		switch {
		case a.Mem > b.Mem:
			return -1
		case a.Mem < b.Mem:
			return 1
		}
	case DimThroughput: // larger (less negative) pmin delta is better
		switch {
		case a.Eff > b.Eff:
			return -1
		case a.Eff < b.Eff:
			return 1
		}
	}
	return 0
}

// Compare ranks two ratings under the dimension's §3.4 order, optionally
// consulting the secondary and tertiary components on ties. It returns a
// negative value when a is the more effective pruning, positive when b is,
// and 0 when the order cannot separate them.
func Compare(a, b Rating, dim Dimension, tieBreak bool) int {
	order := dimOrders[dim]
	if c := compareComponent(a, b, order[0]); c != 0 || !tieBreak {
		return c
	}
	if c := compareComponent(a, b, order[1]); c != 0 {
		return c
	}
	return compareComponent(a, b, order[2])
}
