package core

import (
	"testing"
	"testing/quick"

	"dimprune/internal/dist"
	"dimprune/internal/subscription"
)

// TestQuickQueueAlwaysPopsBest: for random subscription populations and any
// dimension, every Step must apply a pruning at least as effective (under
// the dimension order) as every other subscription's best candidate at that
// moment — the §3.4 queue contract.
func TestQuickQueueAlwaysPopsBest(t *testing.T) {
	model := trainedModel(t)
	prop := func(seed uint64, dimSel uint8) bool {
		dims := []Dimension{DimNetwork, DimMemory, DimThroughput}
		dim := dims[int(dimSel)%len(dims)]
		eng, err := NewEngine(dim, model, Options{})
		if err != nil {
			return false
		}
		r := dist.New(seed)
		for id := uint64(1); id <= 25; id++ {
			s, err := subscription.New(id, "c", randomTree(r, 2).Simplify())
			if err != nil {
				return false
			}
			if err := eng.Register(s); err != nil {
				return false
			}
		}
		for steps := 0; steps < 10; steps++ {
			// Compute every entry's best rating before stepping.
			best := make(map[uint64]Rating)
			for id := uint64(1); id <= 25; id++ {
				cur, ok := eng.Current(id)
				if !ok {
					return false
				}
				if r, ok := bestRating(eng, cur); ok {
					best[id] = r
				}
			}
			op, ok := eng.Step()
			if !ok {
				return len(best) == 0
			}
			applied := op.Rating
			for _, other := range best {
				if Compare(other, applied, dim, true) < 0 {
					return false // a strictly better pruning was skipped
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// bestRating recomputes a subscription's best candidate rating the same way
// the engine does, as an independent oracle.
func bestRating(e *Engine, s *subscription.Subscription) (Rating, bool) {
	ent, ok := e.entries[s.ID]
	if !ok || ent.best == nil {
		return Rating{}, false
	}
	return ent.best.rating, true
}

// TestQuickExhaustionCountsStable: exhausting the same population twice
// yields identical totals and identical final trees (full determinism).
func TestQuickExhaustionDeterministic(t *testing.T) {
	model := trainedModel(t)
	prop := func(seed uint64) bool {
		run := func() (int, string) {
			eng, err := NewEngine(DimNetwork, model, Options{})
			if err != nil {
				return -1, ""
			}
			r := dist.New(seed)
			for id := uint64(1); id <= 20; id++ {
				s, err := subscription.New(id, "c", randomTree(r, 3).Simplify())
				if err != nil {
					return -1, ""
				}
				eng.Register(s)
			}
			n := eng.Exhaust()
			state := ""
			for id := uint64(1); id <= 20; id++ {
				cur, _ := eng.Current(id)
				state += cur.String() + ";"
			}
			return n, state
		}
		n1, s1 := run()
		n2, s2 := run()
		return n1 == n2 && s1 == s2 && n1 >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickRegisterAtMatchesNaturalFlow: registering (original, current)
// reached by k natural steps behaves identically to having stepped there.
func TestQuickRegisterAtMatchesNaturalFlow(t *testing.T) {
	model := trainedModel(t)
	prop := func(seed uint64, kRaw uint8) bool {
		r := dist.New(seed)
		root := randomTree(r, 3).Simplify()
		orig, err := subscription.New(1, "c", root)
		if err != nil {
			return false
		}
		natural, err := NewEngine(DimNetwork, model, Options{})
		if err != nil {
			return false
		}
		natural.Register(orig)
		k := int(kRaw % 3)
		for i := 0; i < k; i++ {
			natural.Step()
		}
		cur, _ := natural.Current(1)

		restored, err := NewEngine(DimNetwork, model, Options{})
		if err != nil {
			return false
		}
		if err := restored.RegisterAt(orig, cur); err != nil {
			return false
		}
		// Both engines must agree on every subsequent step.
		for {
			op1, ok1 := natural.Step()
			op2, ok2 := restored.Step()
			if ok1 != ok2 {
				return false
			}
			if !ok1 {
				return true
			}
			if !op1.Subscription.Root.Equal(op2.Subscription.Root) {
				return false
			}
		}
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
