package core

import (
	"container/heap"
	"fmt"

	"dimprune/internal/selectivity"
	"dimprune/internal/subscription"
)

// Options configure an Engine. The zero value applies the paper's defaults.
type Options struct {
	// Innermost restricts candidates to prunings with no valid pruning
	// inside their own subtree (§3.2). Nil selects the paper's behaviour:
	// enabled for DimMemory, disabled otherwise. The ablation benches set it
	// explicitly.
	Innermost *bool
	// DisableTieBreak turns off the secondary/tertiary dimension orders of
	// §3.4, leaving ties to the deterministic subscription-ID order. Used by
	// the tie-break ablation.
	DisableTieBreak bool
	// AvgOnlySelectivity replaces the three-component Δ≈sel (max over
	// min/avg/max differences) with the average-component difference alone.
	// Used by the estimator ablation to quantify what the paper's
	// three-component estimate buys.
	AvgOnlySelectivity bool
}

// InnermostOn/InnermostOff are convenient literals for Options.Innermost.
var (
	innermostOn  = true
	innermostOff = false

	// InnermostOn forces the §3.2 innermost restriction for all dimensions.
	InnermostOn = &innermostOn
	// InnermostOff disables the restriction even for DimMemory.
	InnermostOff = &innermostOff
)

// PruneOp describes one applied pruning.
type PruneOp struct {
	// Subscription is the post-pruning subscription (same ID and subscriber,
	// new tree). Callers apply it to their filtering engine / routing table.
	Subscription *subscription.Subscription
	// Rating is the heuristic rating the pruning was chosen by.
	Rating Rating
	// RemovedLeaves is the number of predicate leaves the step removed.
	RemovedLeaves int
	// Exhausted reports that the subscription supports no further pruning.
	Exhausted bool
}

// Engine ranks and applies prunings over a set of registered subscriptions.
// It follows §3.4: a priority queue holds each subscription's most effective
// candidate pruning; Step pops the queue, applies the pruning, re-rates that
// subscription, and reinserts it.
//
// The Engine never mutates trees it was given or has handed out: every
// pruning builds a fresh tree. It is not safe for concurrent use.
type Engine struct {
	dim       Dimension
	model     *selectivity.Model
	innermost bool
	tieBreak  bool
	avgOnly   bool

	entries map[uint64]*entry
	queue   prioQueue
	steps   int
}

// entry is the engine's state for one subscription.
type entry struct {
	sub *subscription.Subscription // current (possibly pruned) tree

	origEst  selectivity.Estimate // estimate of the originally registered tree
	origPMin int                  // pmin of the originally registered tree

	best    *candidate // most effective remaining pruning, nil when exhausted
	heapIdx int        // position in the queue, -1 when not queued
}

// candidate is one rated pruning option.
type candidate struct {
	rating Rating
	pruned *subscription.Node
}

// NewEngine creates an engine optimizing for the given dimension. The
// selectivity model supplies Δ≈sel; it may be shared with the broker and may
// keep learning from events between steps (ratings are computed lazily).
func NewEngine(dim Dimension, model *selectivity.Model, opts Options) (*Engine, error) {
	if !dim.Valid() {
		return nil, fmt.Errorf("core: invalid dimension %d", int(dim))
	}
	if model == nil {
		return nil, fmt.Errorf("core: nil selectivity model")
	}
	inner := dim == DimMemory
	if opts.Innermost != nil {
		inner = *opts.Innermost
	}
	return &Engine{
		dim:       dim,
		model:     model,
		innermost: inner,
		tieBreak:  !opts.DisableTieBreak,
		avgOnly:   opts.AvgOnlySelectivity,
		entries:   make(map[uint64]*entry),
	}, nil
}

// Dimension returns the active dimension.
func (e *Engine) Dimension() Dimension { return e.dim }

// Len returns the number of registered subscriptions.
func (e *Engine) Len() int { return len(e.entries) }

// Steps returns the number of prunings performed so far.
func (e *Engine) Steps() int { return e.steps }

// Remaining returns the number of subscriptions that still support at least
// one pruning.
func (e *Engine) Remaining() int { return e.queue.Len() }

// Register adds a subscription to the engine and queues its most effective
// pruning. The engine treats s as the *original* registration: Δ≈sel and
// Δ≈eff stay anchored to it across subsequent prunings.
func (e *Engine) Register(s *subscription.Subscription) error {
	return e.RegisterAt(s, s)
}

// RegisterAt adds a subscription whose current tree has already been pruned
// in a previous life (broker snapshot restore): heuristic anchors come from
// original while pruning continues from current. The two must share the
// subscription ID.
func (e *Engine) RegisterAt(original, current *subscription.Subscription) error {
	if original.ID != current.ID {
		return fmt.Errorf("core: register mismatch: original %d vs current %d", original.ID, current.ID)
	}
	if _, dup := e.entries[current.ID]; dup {
		return fmt.Errorf("core: subscription %d already registered", current.ID)
	}
	ent := &entry{
		sub:      current,
		origEst:  e.model.Estimate(original.Root),
		origPMin: original.PMin(),
		heapIdx:  -1,
	}
	e.entries[current.ID] = ent
	e.rate(ent)
	if ent.best != nil {
		heap.Push(&e.queue, queued{ent: ent, id: current.ID})
	}
	return nil
}

// Unregister removes a subscription (the paper: unsubscriptions need no
// specialized handling — the entry simply disappears). It reports whether
// the ID was present.
func (e *Engine) Unregister(id uint64) bool {
	ent, ok := e.entries[id]
	if !ok {
		return false
	}
	if ent.heapIdx >= 0 {
		heap.Remove(&e.queue, ent.heapIdx)
	}
	delete(e.entries, id)
	return true
}

// Current returns the engine's current tree for a subscription.
func (e *Engine) Current(id uint64) (*subscription.Subscription, bool) {
	ent, ok := e.entries[id]
	if !ok {
		return nil, false
	}
	return ent.sub, true
}

// Step applies the overall most effective pruning. It returns false when no
// subscription supports any further pruning.
func (e *Engine) Step() (PruneOp, bool) {
	if e.queue.Len() == 0 {
		return PruneOp{}, false
	}
	q := e.queue.items[0]
	ent := q.ent
	op := PruneOp{Rating: ent.best.rating}
	op.RemovedLeaves = ent.sub.NumLeaves() - ent.best.pruned.NumLeaves()

	ent.sub = &subscription.Subscription{
		ID:         ent.sub.ID,
		Subscriber: ent.sub.Subscriber,
		Root:       ent.best.pruned,
	}
	op.Subscription = ent.sub
	e.steps++

	e.rate(ent)
	if ent.best != nil {
		heap.Fix(&e.queue, 0) // re-establish order for the new rating
	} else {
		heap.Pop(&e.queue)
		op.Exhausted = true
	}
	return op, true
}

// Run applies up to n prunings and returns how many were performed.
func (e *Engine) Run(n int) int {
	done := 0
	for done < n {
		if _, ok := e.Step(); !ok {
			break
		}
		done++
	}
	return done
}

// Exhaust applies prunings until none remain and returns the count. The
// experiment harness uses it on a scratch engine to learn the per-heuristic
// normalization total for the figure abscissae (DESIGN.md §1, note 5).
func (e *Engine) Exhaust() int {
	n := 0
	for {
		if _, ok := e.Step(); !ok {
			return n
		}
		n++
	}
}

// SetDimension switches the optimization dimension, re-rating every
// subscription and rebuilding the queue. The adaptive controller (future
// work §5) uses this to respond to changing system conditions; anchors
// (original estimates) are preserved.
func (e *Engine) SetDimension(dim Dimension) error {
	if !dim.Valid() {
		return fmt.Errorf("core: invalid dimension %d", int(dim))
	}
	if dim == e.dim {
		return nil
	}
	e.dim = dim
	e.rebuild()
	return nil
}

// rebuild re-rates all entries and reconstructs the queue.
func (e *Engine) rebuild() {
	e.queue.items = e.queue.items[:0]
	for id, ent := range e.entries {
		ent.heapIdx = -1
		e.rate(ent)
		if ent.best != nil {
			e.queue.items = append(e.queue.items, queued{ent: ent, id: id})
		}
	}
	e.bindQueue()
	heap.Init(&e.queue)
}

// bindQueue ensures the queue carries the comparison configuration.
func (e *Engine) bindQueue() {
	e.queue.dim = e.dim
	e.queue.tieBreak = e.tieBreak
}

// rate computes the entry's most effective candidate under the current
// dimension, or nil when the subscription is exhausted.
func (e *Engine) rate(ent *entry) {
	e.bindQueue()
	root := ent.sub.Root
	var cands []*subscription.Node
	if e.innermost {
		cands = subscription.InnermostCandidates(root, nil)
	} else {
		cands = subscription.Candidates(root, nil)
	}
	var best *candidate
	for _, target := range cands {
		pruned := subscription.PruneAt(root, target)
		if pruned == nil {
			continue
		}
		prunedEst := e.model.Estimate(pruned)
		sel := selectivity.Degradation(ent.origEst, prunedEst)
		if e.avgOnly {
			sel = prunedEst.Avg - ent.origEst.Avg
		}
		r := Rating{
			Sel: sel,
			Mem: root.MemSize() - pruned.MemSize(),
			Eff: pruned.PMin() - ent.origPMin,
		}
		if best == nil || Compare(r, best.rating, e.dim, e.tieBreak) < 0 {
			best = &candidate{rating: r, pruned: pruned}
		}
	}
	ent.best = best
}

// queued is one queue element. The subscription ID provides the final
// deterministic tie-break.
type queued struct {
	ent *entry
	id  uint64
}

// prioQueue is a container/heap implementation ordering entries by their
// best candidate's rating under the engine's dimension order.
type prioQueue struct {
	items    []queued
	dim      Dimension
	tieBreak bool
}

func (q *prioQueue) Len() int { return len(q.items) }

func (q *prioQueue) Less(i, j int) bool {
	a, b := q.items[i], q.items[j]
	if c := Compare(a.ent.best.rating, b.ent.best.rating, q.dim, q.tieBreak); c != 0 {
		return c < 0
	}
	return a.id < b.id
}

func (q *prioQueue) Swap(i, j int) {
	q.items[i], q.items[j] = q.items[j], q.items[i]
	q.items[i].ent.heapIdx = i
	q.items[j].ent.heapIdx = j
}

func (q *prioQueue) Push(x any) {
	item, ok := x.(queued)
	if !ok {
		panic("core: prioQueue.Push called with a non-queued value")
	}
	item.ent.heapIdx = len(q.items)
	q.items = append(q.items, item)
}

func (q *prioQueue) Pop() any {
	n := len(q.items) - 1
	item := q.items[n]
	item.ent.heapIdx = -1
	q.items = q.items[:n]
	return item
}
