package core

import (
	"fmt"
	"testing"

	"dimprune/internal/auction"
	"dimprune/internal/selectivity"
)

// benchModel trains a selectivity model on the auction event stream.
func benchModel(b *testing.B) *selectivity.Model {
	b.Helper()
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	m := selectivity.NewModel()
	for _, ev := range gen.Events(1, 4000) {
		m.Observe(ev)
	}
	return m
}

func BenchmarkRegisterRate(b *testing.B) {
	model := benchModel(b)
	gen, _ := auction.NewGenerator(auction.DefaultConfig())
	eng, err := NewEngine(DimNetwork, model, Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := gen.Subscription(uint64(i+1), "c")
		if err != nil {
			b.Fatal(err)
		}
		if err := eng.Register(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStepRate(b *testing.B) {
	for _, dim := range []Dimension{DimNetwork, DimThroughput, DimMemory} {
		b.Run(dim.String(), func(b *testing.B) {
			model := benchModel(b)
			gen, _ := auction.NewGenerator(auction.DefaultConfig())
			eng, err := NewEngine(dim, model, Options{})
			if err != nil {
				b.Fatal(err)
			}
			// Enough subscriptions that b.N steps never exhaust.
			n := b.N/2 + 1000
			for i := 0; i < n; i++ {
				s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("c%d", i))
				if err != nil {
					b.Fatal(err)
				}
				if err := eng.Register(s); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := eng.Step(); !ok {
					b.Fatal("engine exhausted during benchmark")
				}
			}
		})
	}
}
