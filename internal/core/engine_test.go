package core

import (
	"testing"

	"dimprune/internal/dist"
	"dimprune/internal/event"
	"dimprune/internal/selectivity"
	"dimprune/internal/subscription"
)

// trainedModel returns a model over events with price uniform on [0,100),
// category ∈ {a:50%, b:30%, c:20%}, rating uniform on [0,5).
func trainedModel(t testing.TB) *selectivity.Model {
	t.Helper()
	m := selectivity.NewModel()
	r := dist.New(1)
	for i := 0; i < 10000; i++ {
		b := event.Build(uint64(i)).
			Int("price", int64(r.Intn(100))).
			Int("rating", int64(r.Intn(5)))
		u := r.Float64()
		switch {
		case u < 0.5:
			b.Str("category", "a")
		case u < 0.8:
			b.Str("category", "b")
		default:
			b.Str("category", "c")
		}
		m.Observe(b.Msg())
	}
	return m
}

func mustSub(t testing.TB, id uint64, expr string) *subscription.Subscription {
	t.Helper()
	s, err := subscription.New(id, "client", subscription.MustParse(expr))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func newEngine(t testing.TB, dim Dimension, opts Options) *Engine {
	t.Helper()
	e, err := NewEngine(dim, trainedModel(t), opts)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Dimension(0), selectivity.NewModel(), Options{}); err == nil {
		t.Error("invalid dimension accepted")
	}
	if _, err := NewEngine(DimNetwork, nil, Options{}); err == nil {
		t.Error("nil model accepted")
	}
}

func TestDimensionString(t *testing.T) {
	if DimNetwork.String() != "sel" || DimMemory.String() != "mem" || DimThroughput.String() != "eff" {
		t.Error("dimension labels changed")
	}
	if Dimension(9).Valid() {
		t.Error("unknown dimension reported valid")
	}
}

func TestRegisterDuplicate(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	if err := e.Register(mustSub(t, 1, `price <= 20 and category = "a"`)); err != nil {
		t.Fatal(err)
	}
	if err := e.Register(mustSub(t, 1, `price <= 30`)); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestStepOnExhaustedEngine(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	if _, ok := e.Step(); ok {
		t.Error("empty engine stepped")
	}
	// A single-predicate subscription supports no pruning.
	e.Register(mustSub(t, 1, `price <= 20`))
	if e.Remaining() != 0 {
		t.Error("unprunable subscription queued")
	}
	if _, ok := e.Step(); ok {
		t.Error("engine with only unprunable subscriptions stepped")
	}
}

func TestStepAppliesMostEffectiveNetworkPruning(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	// price <= 95 matches ~95% of events: pruning it degrades selectivity
	// only ~5%. category = "c" matches 20%: pruning it degrades a lot.
	e.Register(mustSub(t, 1, `price <= 95 and category = "c"`))
	op, ok := e.Step()
	if !ok {
		t.Fatal("no pruning available")
	}
	// The cheap pruning removes the price predicate, keeping the category.
	want := `category = "c"`
	if got := op.Subscription.String(); got != want {
		t.Errorf("pruned to %q, want %q", got, want)
	}
	if op.Rating.Sel > 0.1 {
		t.Errorf("selected pruning has degradation %v, want the small one", op.Rating.Sel)
	}
	if !op.Exhausted {
		t.Error("single remaining predicate should be exhausted")
	}
	if op.RemovedLeaves != 1 {
		t.Errorf("RemovedLeaves = %d, want 1", op.RemovedLeaves)
	}
}

func TestNetworkOrderAcrossSubscriptions(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	// Sub 1's cheapest pruning costs ~5% degradation, sub 2's ~1%.
	e.Register(mustSub(t, 1, `price <= 95 and category = "c"`))
	e.Register(mustSub(t, 2, `price <= 99 and category = "c"`))
	op, _ := e.Step()
	if op.Subscription.ID != 2 {
		t.Errorf("first pruning hit subscription %d, want 2 (cheaper degradation)", op.Subscription.ID)
	}
}

func TestMemoryDimensionPrefersLargestReduction(t *testing.T) {
	e := newEngine(t, DimMemory, Options{})
	// Sub 1 has a small predicate to cut; sub 2 carries a fat string
	// predicate (longer attribute+value) — memory-based pruning goes there.
	e.Register(mustSub(t, 1, `price <= 20 and rating >= 4`))
	e.Register(mustSub(t, 2, `price <= 20 and very_long_attribute_name = "a very long string value indeed"`))
	op, _ := e.Step()
	if op.Subscription.ID != 2 {
		t.Errorf("memory pruning hit subscription %d, want 2", op.Subscription.ID)
	}
	if op.Rating.Mem <= 0 {
		t.Errorf("memory improvement %d, want > 0", op.Rating.Mem)
	}
}

func TestMemoryInnermostRestrictionDefault(t *testing.T) {
	// Under DimMemory the innermost restriction applies by default: the OR
	// subtree (largest) must not be pruned while prunings exist inside it.
	e := newEngine(t, DimMemory, Options{})
	e.Register(mustSub(t, 1, `price <= 20 and ((category = "a" and rating >= 1) or (category = "b" and rating >= 2))`))
	op, _ := e.Step()
	// The whole OR has the biggest MemSize; innermost forbids it. The first
	// pruning must be a leaf inside the OR or the price leaf.
	if op.RemovedLeaves != 1 {
		t.Errorf("innermost-restricted step removed %d leaves, want 1", op.RemovedLeaves)
	}
}

func TestMemoryWithoutInnermostCutsSubtrees(t *testing.T) {
	e := newEngine(t, DimMemory, Options{Innermost: InnermostOff})
	e.Register(mustSub(t, 1, `price <= 20 and ((category = "a" and rating >= 1) or (category = "b" and rating >= 2))`))
	op, _ := e.Step()
	if op.RemovedLeaves != 4 {
		t.Errorf("unrestricted memory pruning removed %d leaves, want the whole OR (4)", op.RemovedLeaves)
	}
}

func TestThroughputDimensionPreservesPMin(t *testing.T) {
	e := newEngine(t, DimThroughput, Options{})
	// Pruning a leaf out of the OR keeps pmin at 2 (Δeff = 0 — the OR min
	// branch...) while pruning a top-level AND leaf drops pmin to 1.
	e.Register(mustSub(t, 1, `price <= 50 and (category = "a" or (category = "b" and rating >= 3))`))
	orig := mustSub(t, 1, `price <= 50 and (category = "a" or (category = "b" and rating >= 3))`)
	op, _ := e.Step()
	if op.Subscription.PMin() < orig.PMin() {
		t.Errorf("throughput pruning dropped pmin from %d to %d with a pmin-neutral option available",
			orig.PMin(), op.Subscription.PMin())
	}
	if op.Rating.Eff != 0 {
		t.Errorf("Eff = %d, want 0", op.Rating.Eff)
	}
}

func TestEffAnchoredAtOriginal(t *testing.T) {
	// After several prunings, Δ≈eff still measures pmin distance to the
	// original subscription, not the previous tree.
	e := newEngine(t, DimThroughput, Options{})
	e.Register(mustSub(t, 1, `a = 1 and b = 2 and c = 3 and price <= 50`))
	origPMin := 4
	for {
		op, ok := e.Step()
		if !ok {
			break
		}
		if want := op.Subscription.PMin() - origPMin; op.Rating.Eff != want {
			t.Errorf("Eff = %d, want %d (anchored at original pmin %d)", op.Rating.Eff, want, origPMin)
		}
	}
}

func TestSelAnchoredAtOriginal(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	model := trainedModel(t)
	s := mustSub(t, 1, `price <= 50 and category = "a" and rating >= 2`)
	origEst := model.Estimate(s.Root)
	e.Register(s)
	var lastSel float64
	for {
		op, ok := e.Step()
		if !ok {
			break
		}
		want := selectivity.Degradation(origEst, model.Estimate(op.Subscription.Root))
		if diff := op.Rating.Sel - want; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("Sel = %v, want %v (anchored at original)", op.Rating.Sel, want)
		}
		if op.Rating.Sel < lastSel-1e-9 {
			t.Errorf("anchored degradation decreased: %v after %v", op.Rating.Sel, lastSel)
		}
		lastSel = op.Rating.Sel
	}
}

func TestUnregisterRemovesFromQueue(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	e.Register(mustSub(t, 1, `price <= 95 and category = "c"`))
	e.Register(mustSub(t, 2, `price <= 99 and category = "c"`))
	if !e.Unregister(2) {
		t.Fatal("unregister failed")
	}
	if e.Unregister(2) {
		t.Error("double unregister succeeded")
	}
	op, ok := e.Step()
	if !ok || op.Subscription.ID != 1 {
		t.Errorf("step after unregister = %+v, %v; want subscription 1", op, ok)
	}
	if e.Len() != 1 {
		t.Errorf("Len = %d, want 1", e.Len())
	}
}

func TestExhaustTerminatesAndCounts(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	r := dist.New(7)
	total := 0
	for id := uint64(1); id <= 100; id++ {
		root := randomTree(r, 3).Simplify()
		s, err := subscription.New(id, "c", root)
		if err != nil {
			t.Fatal(err)
		}
		e.Register(s)
	}
	n := e.Exhaust()
	if n <= 0 {
		t.Fatal("exhaust performed no prunings")
	}
	total += n
	// Invariant 7: all current trees are AND-free.
	for id := uint64(1); id <= 100; id++ {
		cur, ok := e.Current(id)
		if !ok {
			t.Fatalf("subscription %d lost", id)
		}
		if subscription.ContainsAnd(cur.Root) {
			t.Errorf("subscription %d not exhausted: %s", id, cur)
		}
	}
	if _, ok := e.Step(); ok {
		t.Error("Step succeeded after Exhaust")
	}
	if e.Steps() != total {
		t.Errorf("Steps = %d, want %d", e.Steps(), total)
	}
}

func TestEveryStepGeneralizes(t *testing.T) {
	// End-to-end generalization: each Step's output matches a superset of
	// the events its predecessor matched.
	for _, dim := range []Dimension{DimNetwork, DimMemory, DimThroughput} {
		t.Run(dim.String(), func(t *testing.T) {
			e := newEngine(t, dim, Options{})
			r := dist.New(11)
			prev := map[uint64]*subscription.Subscription{}
			for id := uint64(1); id <= 60; id++ {
				s, err := subscription.New(id, "c", randomTree(r, 3).Simplify())
				if err != nil {
					t.Fatal(err)
				}
				e.Register(s)
				prev[id] = s
			}
			for {
				op, ok := e.Step()
				if !ok {
					break
				}
				before := prev[op.Subscription.ID]
				for i := 0; i < 25; i++ {
					m := randomMessage(r, uint64(i))
					if before.Matches(m) && !op.Subscription.Matches(m) {
						t.Fatalf("step specialized %d: %s -> %s on %s",
							op.Subscription.ID, before, op.Subscription, m)
					}
				}
				prev[op.Subscription.ID] = op.Subscription
			}
		})
	}
}

func TestDeterministicSequence(t *testing.T) {
	run := func() []uint64 {
		e := newEngine(t, DimNetwork, Options{})
		r := dist.New(13)
		for id := uint64(1); id <= 50; id++ {
			s, _ := subscription.New(id, "c", randomTree(r, 3).Simplify())
			e.Register(s)
		}
		var order []uint64
		for {
			op, ok := e.Step()
			if !ok {
				return order
			}
			order = append(order, op.Subscription.ID)
		}
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("pruning order diverged at step %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestSetDimensionRebuilds(t *testing.T) {
	e := newEngine(t, DimNetwork, Options{})
	e.Register(mustSub(t, 1, `price <= 20 and very_long_attribute_name = "a very long string value indeed"`))
	e.Register(mustSub(t, 2, `price <= 99 and category = "c"`))
	if err := e.SetDimension(Dimension(42)); err == nil {
		t.Error("invalid dimension accepted")
	}
	if err := e.SetDimension(DimMemory); err != nil {
		t.Fatal(err)
	}
	op, _ := e.Step()
	if op.Subscription.ID != 1 {
		t.Errorf("after switching to memory, first pruning hit %d, want 1", op.Subscription.ID)
	}
	// Switching to the same dimension is a no-op.
	if err := e.SetDimension(DimMemory); err != nil {
		t.Fatal(err)
	}
	if e.Remaining() == 0 {
		t.Error("queue lost on no-op dimension switch")
	}
}

func TestCompareTieBreakOrders(t *testing.T) {
	a := Rating{Sel: 0.1, Mem: 10, Eff: -1}
	b := Rating{Sel: 0.1, Mem: 20, Eff: -1}
	// Network order (sel, eff, mem): tie on sel and eff, mem decides.
	if Compare(a, b, DimNetwork, true) <= 0 {
		t.Error("network tie-break should prefer larger mem")
	}
	// With tie-break disabled the ratings are incomparable.
	if Compare(a, b, DimNetwork, false) != 0 {
		t.Error("tie-break disabled but components beyond primary consulted")
	}
	// Throughput order (eff, sel, mem).
	c := Rating{Sel: 0.2, Mem: 5, Eff: 0}
	d := Rating{Sel: 0.1, Mem: 5, Eff: -2}
	if Compare(c, d, DimThroughput, true) >= 0 {
		t.Error("throughput order must rank higher eff first")
	}
	// Memory order (mem, sel, eff).
	if Compare(a, b, DimMemory, true) <= 0 {
		t.Error("memory order must rank larger mem first")
	}
}

func TestStepsAgainstFilterEngineConsistency(t *testing.T) {
	// Applying engine output to a filter engine keeps matching a superset of
	// the original subscription's matches (routing correctness upper layer).
	model := trainedModel(t)
	eng, err := NewEngine(DimNetwork, model, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := dist.New(17)
	originals := map[uint64]*subscription.Subscription{}
	for id := uint64(1); id <= 40; id++ {
		s, _ := subscription.New(id, "c", randomTree(r, 2).Simplify())
		eng.Register(s)
		originals[id] = s
	}
	current := map[uint64]*subscription.Subscription{}
	for id, s := range originals {
		current[id] = s
	}
	for {
		op, ok := eng.Step()
		if !ok {
			break
		}
		current[op.Subscription.ID] = op.Subscription
	}
	for i := 0; i < 300; i++ {
		m := randomMessage(r, uint64(i))
		for id, orig := range originals {
			if orig.Matches(m) && !current[id].Matches(m) {
				t.Fatalf("fully pruned subscription %d lost a match", id)
			}
		}
	}
}
