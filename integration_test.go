package dimprune

// Integration tests: the full stack (workload → overlay → pruning →
// delivery) exercised the way the paper's distributed experiment uses it,
// with the §4.2 comparative claims asserted at a reduced scale.

import (
	"fmt"
	"testing"
)

// buildAuctionOverlay wires the auction workload into a 5-broker line with
// the given pruning dimension and returns the overlay plus the original
// subscriptions keyed by ID.
func buildAuctionOverlay(t *testing.T, dim Dimension, subs, train int) (*Overlay, map[uint64]*Subscription, *Workload) {
	t.Helper()
	w, err := NewWorkload(DefaultWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewLineOverlay(5, dim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < train; i++ {
		m := w.Event(uint64(i + 1))
		for b := 0; b < 5; b++ {
			net.Broker(b).Model().Observe(m)
		}
	}
	originals := make(map[uint64]*Subscription, subs)
	for i := 0; i < subs; i++ {
		s, err := w.Subscription(uint64(i+1), fmt.Sprintf("client-%d", i+1))
		if err != nil {
			t.Fatal(err)
		}
		if err := net.SubscribeAt(i%5, s); err != nil {
			t.Fatal(err)
		}
		originals[s.ID] = s
	}
	return net, originals, w
}

func TestAuctionOverlayExactDeliveryAcrossDimensions(t *testing.T) {
	for _, dim := range []Dimension{Network, Throughput, Memory} {
		t.Run(dim.String(), func(t *testing.T) {
			net, originals, w := buildAuctionOverlay(t, dim, 400, 600)

			publish := func(phase string) {
				for i := 0; i < 150; i++ {
					m := w.Event(uint64(10000 + i))
					dels, err := net.PublishAt(i%5, m)
					if err != nil {
						t.Fatal(err)
					}
					seen := map[uint64]int{}
					for _, d := range dels {
						seen[d.SubID]++
					}
					for id, s := range originals {
						want := 0
						if s.Matches(m) {
							want = 1
						}
						if seen[id] != want {
							t.Fatalf("%s: subscription %d delivered %d times, want %d (event %s)",
								phase, id, seen[id], want, m)
						}
					}
				}
			}

			publish("unpruned")
			net.PruneEach(1)
			publish("lightly pruned")
			for net.PruneEach(1000) > 0 {
			}
			publish("fully pruned")
		})
	}
}

func TestTrafficOrderingAcrossDimensions(t *testing.T) {
	// The paper's headline §4.2 claim: at a mid-level pruning budget,
	// network-based pruning forwards the fewest extra events and
	// memory-based the most.
	frames := map[Dimension]uint64{}
	for _, dim := range []Dimension{Network, Throughput, Memory} {
		net, _, w := buildAuctionOverlay(t, dim, 600, 800)
		// Equal budget per dimension: two steps per prunable subscription.
		for b := 0; b < 5; b++ {
			net.Broker(b).Prune(net.Broker(b).PruneRemaining() * 2)
		}
		net.ResetTraffic()
		for i := 0; i < 250; i++ {
			if _, err := net.PublishAt(i%5, w.Event(uint64(20000+i))); err != nil {
				t.Fatal(err)
			}
		}
		frames[dim] = net.Traffic().PublishFrames
	}
	t.Logf("publish frames at equal budget: sel=%d eff=%d mem=%d",
		frames[Network], frames[Throughput], frames[Memory])
	if frames[Network] > frames[Throughput] {
		t.Errorf("network-based pruning routed more frames (%d) than throughput-based (%d)",
			frames[Network], frames[Throughput])
	}
	if frames[Throughput] > frames[Memory] {
		t.Errorf("throughput-based pruning routed more frames (%d) than memory-based (%d)",
			frames[Throughput], frames[Memory])
	}
}

func TestMemoryOrderingAcrossDimensions(t *testing.T) {
	// Memory-based pruning must shrink routing tables at least as much as
	// the other dimensions at the same budget.
	reduction := map[Dimension]float64{}
	for _, dim := range []Dimension{Network, Throughput, Memory} {
		net, _, _ := buildAuctionOverlay(t, dim, 600, 800)
		before := 0
		for b := 0; b < 5; b++ {
			before += net.Broker(b).NonLocalAssociations()
		}
		for b := 0; b < 5; b++ {
			net.Broker(b).Prune(net.Broker(b).PruneRemaining() * 2)
		}
		after := 0
		for b := 0; b < 5; b++ {
			after += net.Broker(b).NonLocalAssociations()
		}
		reduction[dim] = 1 - float64(after)/float64(before)
	}
	t.Logf("non-local association reduction at equal budget: sel=%.3f eff=%.3f mem=%.3f",
		reduction[Network], reduction[Throughput], reduction[Memory])
	if reduction[Memory]+1e-9 < reduction[Network] || reduction[Memory]+1e-9 < reduction[Throughput] {
		t.Errorf("memory-based pruning reduced less than another dimension: %+v", reduction)
	}
}

func TestAdaptiveControllerOnOverlayBroker(t *testing.T) {
	// The broker satisfies PruneTarget; drive one broker of an overlay.
	net, _, _ := buildAuctionOverlay(t, Throughput, 300, 400)
	b := net.Broker(2)
	ctrl, err := NewAdaptiveController(b, AdaptivePolicy{})
	if err != nil {
		t.Fatal(err)
	}
	st := b.Stats()
	dim, pruned, err := ctrl.Tick(Signals{
		Associations:      st.Associations,
		AssociationBudget: st.Associations / 2, // force memory pressure
	}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if dim != Memory {
		t.Errorf("controller picked %v under memory pressure", dim)
	}
	if pruned == 0 {
		t.Error("controller pruned nothing")
	}
	if b.Dimension() != Memory {
		t.Error("broker dimension not switched")
	}
}
