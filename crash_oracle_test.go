package dimprune

import (
	"testing"
	"time"

	"dimprune/internal/subscription"
)

// Kill/restart oracle for the durable plane, table-driven over registered
// workload scenarios: a durable subscriber's delivered set must converge
// to the exact broker's match set even when the broker is killed (WAL
// frozen mid-state, unsynced ack advances lost, handles torn down without
// drains) between the two halves of the workload. At-least-once is the
// contract under test — duplicates across the crash are permitted and
// expected (unacked records replay), losses and spurious deliveries are
// not.

// crashDurableExpr picks each scenario's durable subscription: the first
// broad expression from the differential table, so the durable sees dense
// traffic rather than one generated class.
func crashDurableExpr(t *testing.T, name string) string {
	t.Helper()
	broad, ok := diffBroadSubs[name]
	if !ok || len(broad) == 0 {
		t.Fatalf("workload %q has no broad subscriptions to use as the durable", name)
	}
	return broad[0]
}

func TestDurableCrashReplayOracle(t *testing.T) {
	for _, name := range []string{"ticker", "sensornet"} {
		t.Run(name, func(t *testing.T) {
			w := makeDiffWorkload(t, name)
			expr := crashDurableExpr(t, name)
			root := subscription.MustParse(expr)

			// Ground truth: the event IDs the durable must end up with.
			expected := make(map[uint64]bool)
			for _, m := range w.events {
				if root.Matches(m) {
					expected[m.ID] = true
				}
			}
			if len(expected) < 10 {
				t.Fatalf("durable expr %q matches only %d/%d events — too sparse to exercise replay",
					expr, len(expected), len(w.events))
			}

			dir := t.TempDir()
			half := len(w.events) / 2

			// Phase 1: publish the first half, consume part of it with
			// sparse acks, then kill the broker with backlog outstanding.
			ps1, err := NewEmbedded(EmbeddedConfig{WALDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			h1, err := ps1.SubscribeExpr(expr, WithDurable("crash"), WithBuffer(256))
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[uint64]int) // event ID → delivery count
			for _, m := range w.events[:half] {
				if _, err := ps1.Publish(m); err != nil {
					t.Fatal(err)
				}
			}
			// Consume roughly half the phase-1 backlog, acking every third
			// delivery: the crash then finds acked, delivered-unacked, and
			// never-delivered records all at once.
			consume := 0
		phase1:
			for {
				select {
				case n := <-h1.C():
					got[n.Msg.ID]++
					consume++
					if consume%3 == 0 {
						if err := h1.Ack(n.Seq); err != nil {
							t.Fatal(err)
						}
					}
					if consume >= len(expected)/4 {
						break phase1
					}
				case <-time.After(2 * time.Second):
					break phase1 // fewer matches in the first half than planned
				}
			}
			ps1.Kill()

			// Phase 2: reopen the same directory, reattach, publish the rest,
			// and drain until every expected ID has arrived at least once.
			ps2, err := NewEmbedded(EmbeddedConfig{WALDir: dir})
			if err != nil {
				t.Fatal(err)
			}
			defer ps2.Close()
			h2, err := ps2.SubscribeExpr(expr, WithDurable("crash"), WithBuffer(256))
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range w.events[half:] {
				if _, err := ps2.Publish(m); err != nil {
					t.Fatal(err)
				}
			}
			remaining := len(expected)
			for id := range got {
				if expected[id] {
					remaining--
				}
			}
			deadline := time.After(30 * time.Second)
			for remaining > 0 {
				select {
				case n := <-h2.C():
					if got[n.Msg.ID] == 0 && expected[n.Msg.ID] {
						remaining--
					}
					got[n.Msg.ID]++
					if err := h2.Ack(n.Seq); err != nil {
						t.Fatal(err)
					}
				case <-deadline:
					t.Fatalf("converged on %d/%d expected deliveries before timeout",
						len(expected)-remaining, len(expected))
				}
			}

			// Losses: impossible by the loop above. Spurious deliveries: every
			// delivered ID must be in the exact match set.
			for id, count := range got {
				if !expected[id] {
					t.Errorf("event %d delivered %d times but never matched %q", id, count, expr)
				}
			}
			// The crash left delivered-but-unacked records, so at least one
			// duplicate should have been observed — if none ever is, the test
			// stopped exercising redelivery and should be revisited.
			dups := 0
			for _, count := range got {
				if count > 1 {
					dups++
				}
			}
			if consume > 0 && dups == 0 {
				t.Logf("note: no duplicate deliveries observed (consumed %d before the kill)", consume)
			}
		})
	}
}
