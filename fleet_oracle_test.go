package dimprune

import (
	"fmt"
	"sync"
	"testing"

	"dimprune/internal/broker"
	"dimprune/internal/fleet"
	"dimprune/internal/workload"
)

// Differential oracle for the fleet plane: a 4-shard fleet — subscriptions
// hash-partitioned across four brokers, publishes scattered only to shards
// with a candidate cover and gathered back — must produce exactly the
// delivery set of the single exact broker, for every registered workload,
// covering on and off. Sharding, like pruning and covering before it, must
// be invisible to delivery semantics.

const fleetOracleShards = 4

// fleetDeliveries runs the shared differential workload on an n-shard
// fleet and returns its delivery set.
func fleetDeliveries(t *testing.T, w *diffWorkload, shards int, covering bool) map[delivPair]bool {
	t.Helper()
	c := fleet.NewCoordinator()
	defer func() { _ = c.Close() }()
	for i := 0; i < shards; i++ {
		sh, err := fleet.NewLocalShard(fmt.Sprintf("shard%d", i),
			broker.Config{DisableCovering: !covering})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AddShard(sh); err != nil {
			t.Fatal(err)
		}
	}
	for i := range w.subs {
		if err := c.Subscribe(w.clone(i)); err != nil {
			t.Fatal(err)
		}
	}
	got := make(map[delivPair]bool)
	for _, m := range w.events {
		dels, err := c.Publish(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dels {
			p := delivPair{sub: d.SubID, msg: d.Msg.ID}
			if got[p] {
				t.Fatalf("fleet delivered %+v twice", p)
			}
			got[p] = true
		}
	}
	// The scatter index must be doing its job when covering is on: fewer
	// shard publishes than full broadcast. (With covering off every shard
	// advertises everything, so broadcast is expected.)
	st := c.Stats()
	if covering && st.ShardsSkipped == 0 {
		t.Logf("note: no shard publishes skipped on this workload (dense covers)")
	}
	return got
}

func TestFleetDifferentialVsExact(t *testing.T) {
	names := workload.Names()
	if len(names) < 3 {
		t.Fatalf("expected at least 3 registered workloads, got %v", names)
	}
	for i, name := range names {
		if testing.Short() && i > 0 {
			t.Logf("short mode: skipping workload %q", name)
			continue
		}
		t.Run(name, func(t *testing.T) {
			w := makeDiffWorkload(t, name)
			exact := exactDeliveries(t, w)
			if len(exact) == 0 {
				t.Fatal("workload produced no matches; differential comparison is vacuous")
			}
			for _, covering := range []bool{true, false} {
				label := "covering-on"
				if !covering {
					label = "covering-off"
				}
				t.Run(label, func(t *testing.T) {
					got := fleetDeliveries(t, w, fleetOracleShards, covering)
					assertSameDeliveries(t, "fleet", got, exact)
				})
			}
		})
	}
}

// TestFleetRebalanceChurnConvergesToExact kills a shard and grows the
// fleet mid-workload, concurrently with the publisher: the coordinator
// must retract the dead shard, redistribute its retained subscriptions,
// replay moved subscriptions on the joining shard — and the full run's
// delivery set must still be exactly the exact broker's. Run under -race
// this also proves the scatter path and the membership path share state
// safely.
func TestFleetRebalanceChurnConvergesToExact(t *testing.T) {
	w := makeDiffWorkload(t, "auction")
	exact := exactDeliveries(t, w)

	c := fleet.NewCoordinator()
	defer func() { _ = c.Close() }()
	shards := make([]*fleet.LocalShard, 4)
	for i := range shards {
		sh, err := fleet.NewLocalShard(fmt.Sprintf("shard%d", i), broker.Config{})
		if err != nil {
			t.Fatal(err)
		}
		shards[i] = sh
		if err := c.AddShard(sh); err != nil {
			t.Fatal(err)
		}
	}
	for i := range w.subs {
		if err := c.Subscribe(w.clone(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Churn while the publisher runs: one abrupt shard death and one join,
	// fired from a second goroutine at publisher milestones.
	third := len(w.events) / 3
	milestone := make(chan int, len(w.events))
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		killed, joined := false, false
		for i := range milestone {
			if !killed && i >= third {
				shards[1].Kill()
				killed = true
			}
			if !joined && i >= 2*third {
				sh, err := fleet.NewLocalShard("shard4", broker.Config{})
				if err == nil {
					_ = c.AddShard(sh)
				}
				joined = true
			}
		}
	}()

	got := make(map[delivPair]bool)
	for i, m := range w.events {
		milestone <- i
		dels, err := c.Publish(m)
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range dels {
			p := delivPair{sub: d.SubID, msg: d.Msg.ID}
			if got[p] {
				t.Fatalf("fleet delivered %+v twice under churn", p)
			}
			got[p] = true
		}
	}
	close(milestone)
	churn.Wait()

	assertSameDeliveries(t, "churned fleet", got, exact)
	st := c.Stats()
	if st.Moved == 0 {
		t.Error("churn moved no subscriptions; rebalance untested")
	}
	if names := c.Shards(); len(names) != 4 {
		t.Errorf("fleet membership after churn: %v", names)
	}
	t.Logf("churn: %d deliveries, %d moved subscriptions, %d deduped, membership %v",
		len(got), st.Moved, st.Deduped, c.Shards())
}
