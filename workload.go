package dimprune

import (
	"dimprune/internal/auction"
	"dimprune/internal/workload"

	// Populate the workload registry with the standard scenarios; see
	// WorkloadNames for what importing this package makes available.
	_ "dimprune/internal/sensornet"
	_ "dimprune/internal/ticker"
)

// Workload plane: scenarios are first-class. A workload is a deterministic
// seeded generator of events and classed subscriptions, registered under a
// name; the experiment harness (ExperimentConfig.Workload), the CLIs
// (prunesim/wlgen -workload), and the differential oracles run any
// registered scenario interchangeably. The standard set:
//
//   - "auction": the paper's online book auction — skewed catalog
//     popularity, bargain-hunting conjunctions with occasional
//     disjunctions (the evaluation baseline).
//   - "ticker": stock ticker — few hot symbols, numeric range predicates,
//     shallow conjunctive subscriptions (covering-friendly).
//   - "sensornet": fleet telemetry — high attribute cardinality,
//     disjunctive alert trees (covering-hostile, pruning's home turf).

// WorkloadGenerator generates one scenario's deterministic event and
// subscription streams. Not safe for concurrent use.
type WorkloadGenerator = workload.Generator

// WorkloadInfo describes one registered workload scenario.
type WorkloadInfo = workload.Info

// NewWorkloadGenerator builds a generator for the named registered
// workload with the given seed.
func NewWorkloadGenerator(name string, seed uint64) (WorkloadGenerator, error) {
	return workload.New(name, seed)
}

// WorkloadNames returns the registered workload names, sorted.
func WorkloadNames() []string { return workload.Names() }

// LookupWorkload returns the registration for a workload name.
func LookupWorkload(name string) (WorkloadInfo, bool) { return workload.Lookup(name) }

// Auction-workload re-exports: the online book-auction generator used by
// the paper's evaluation, with its class and config types.

// WorkloadConfig parameterizes the auction workload generator.
type WorkloadConfig = auction.Config

// Workload generates auction events and subscriptions deterministically.
type Workload = auction.Generator

// WorkloadClass identifies the three subscription classes.
type WorkloadClass = auction.Class

// Subscription classes of the auction workload.
const (
	// TitleWatcher tracks one specific book below a price limit.
	TitleWatcher = auction.ClassTitleWatcher
	// CategoryHunter browses categories for discounted, well-rated listings.
	CategoryHunter = auction.ClassCategoryHunter
	// AuthorCollector follows several authors with price/format constraints.
	AuthorCollector = auction.ClassAuthorCollector
)

// DefaultWorkloadConfig returns the experiment workload parameters.
func DefaultWorkloadConfig() WorkloadConfig { return auction.DefaultConfig() }

// NewWorkload builds an auction workload generator.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return auction.NewGenerator(cfg) }
