package dimprune

import "dimprune/internal/auction"

// Workload re-exports: the online book-auction generator used by the
// paper's evaluation.

// WorkloadConfig parameterizes the auction workload generator.
type WorkloadConfig = auction.Config

// Workload generates auction events and subscriptions deterministically.
type Workload = auction.Generator

// WorkloadClass identifies the three subscription classes.
type WorkloadClass = auction.Class

// Subscription classes of the auction workload.
const (
	// TitleWatcher tracks one specific book below a price limit.
	TitleWatcher = auction.ClassTitleWatcher
	// CategoryHunter browses categories for discounted, well-rated listings.
	CategoryHunter = auction.ClassCategoryHunter
	// AuthorCollector follows several authors with price/format constraints.
	AuthorCollector = auction.ClassAuthorCollector
)

// DefaultWorkloadConfig returns the experiment workload parameters.
func DefaultWorkloadConfig() WorkloadConfig { return auction.DefaultConfig() }

// NewWorkload builds a workload generator.
func NewWorkload(cfg WorkloadConfig) (*Workload, error) { return auction.NewGenerator(cfg) }
