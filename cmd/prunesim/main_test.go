package main

import (
	"strings"
	"testing"
)

// tiny flags keep the CLI tests fast while exercising the full pipeline.
var tiny = []string{"-subs", "300", "-events", "150", "-train", "300", "-checkpoints", "3"}

func runArgs(t *testing.T, extra ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(append(append([]string{}, tiny...), extra...), &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestCentralizedTable(t *testing.T) {
	out := runArgs(t, "-setting", "centralized")
	for _, want := range []string{"Figure 1a", "Figure 1b", "Figure 1c", "sel", "eff", "mem"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(out, "Figure 1d") {
		t.Error("centralized run printed distributed figures")
	}
}

func TestDistributedCSVSingleFigure(t *testing.T) {
	out := runArgs(t, "-setting", "distributed", "-figure", "1e", "-format", "csv")
	if !strings.Contains(out, "# figure 1e") {
		t.Errorf("missing figure header:\n%s", out)
	}
	if !strings.Contains(out, "ratio,sel,eff,mem") {
		t.Errorf("missing csv header:\n%s", out)
	}
	if strings.Contains(out, "1d") {
		t.Error("figure filter leaked other figures")
	}
}

func TestPlotFormat(t *testing.T) {
	out := runArgs(t, "-setting", "centralized", "-figure", "1b", "-format", "plot")
	for _, want := range []string{"Figure 1b", "prunings", "* = overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot output missing %q", want)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	out := runArgs(t, "-setting", "centralized", "-format", "summary", "-dims", "sel")
	if !strings.Contains(out, "centralized") || !strings.Contains(out, "total prunings") {
		t.Errorf("summary = %q", out)
	}
}

func TestDimensionSelection(t *testing.T) {
	out := runArgs(t, "-setting", "centralized", "-dims", "mem", "-figure", "1c")
	if !strings.Contains(out, "mem") {
		t.Error("mem series missing")
	}
	if strings.Contains(out, "           sel") {
		t.Error("sel series printed though not requested")
	}
}

func TestAblationFlags(t *testing.T) {
	// Just exercise the option plumbing end to end.
	runArgs(t, "-setting", "centralized", "-figure", "1b", "-innermost", "on", "-no-tiebreak")
	runArgs(t, "-setting", "centralized", "-figure", "1b", "-innermost", "off")
}

func TestWorkloadSelection(t *testing.T) {
	// The full sweep must run for any registered scenario, not just the
	// paper's auction.
	for _, wl := range []string{"auction", "ticker", "sensornet"} {
		out := runArgs(t, "-setting", "centralized", "-workload", wl, "-figure", "1b")
		if !strings.Contains(out, "Figure 1b") {
			t.Errorf("workload %s: no figure produced:\n%s", wl, out)
		}
	}
}

func TestWorkloadsProduceDistinctSweeps(t *testing.T) {
	a := runArgs(t, "-setting", "centralized", "-workload", "auction", "-figure", "1b", "-format", "csv")
	s := runArgs(t, "-setting", "centralized", "-workload", "sensornet", "-figure", "1b", "-format", "csv")
	if a == s {
		t.Error("auction and sensornet produced identical figure data; workload flag has no effect")
	}
}

func TestTopologySelection(t *testing.T) {
	// Every overlay shape must run the full distributed sweep and report
	// its name and latency quantiles in the summary.
	for _, topo := range []string{"line", "star", "tree", "tree:3", "random:7"} {
		out := runArgs(t, "-setting", "distributed", "-dims", "sel", "-format", "summary", "-topology", topo)
		if !strings.Contains(out, topo+" topology") {
			t.Errorf("topology %s: summary missing its name:\n%s", topo, out)
		}
		if !strings.Contains(out, "delivery p50") {
			t.Errorf("topology %s: summary missing latency quantiles:\n%s", topo, out)
		}
	}
}

func TestTopologiesProduceDistinctRouting(t *testing.T) {
	line := runArgs(t, "-setting", "distributed", "-dims", "sel", "-format", "summary", "-topology", "line")
	star := runArgs(t, "-setting", "distributed", "-dims", "sel", "-format", "summary", "-topology", "star")
	if line == star {
		t.Error("line and star overlays produced identical summaries; topology flag has no effect")
	}
}

func TestBadFlags(t *testing.T) {
	bad := [][]string{
		{"-setting", "sideways"},
		{"-dims", "bogus"},
		{"-format", "xml"},
		{"-innermost", "sometimes"},
		{"-workload", "bogus"},
		{"-figure", "1a", "-setting", "centralized", "-subs", "0"},
		{"-setting", "distributed", "-topology", "möbius"},
		{"-setting", "distributed", "-topology", "random:x"},
	}
	for _, args := range bad {
		var sb strings.Builder
		if err := run(append(append([]string{}, tiny...), args...), &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
