// Command prunesim reproduces the paper's evaluation figures. It sweeps the
// proportional number of prunings for the selected heuristics and prints
// each figure's data as a table or CSV.
//
// Paper-scale reproduction (Fig 1(a)–(f)):
//
//	prunesim -subs 200000 -events 100000 -setting both
//
// Laptop-scale shape check for one figure:
//
//	prunesim -subs 20000 -events 10000 -setting centralized -figure 1b
//
// The full sweep runs on any registered workload scenario, not just the
// paper's auction (see internal/workload):
//
//	prunesim -workload ticker -setting both
//	prunesim -workload sensornet -figure 1e
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"dimprune/internal/core"
	"dimprune/internal/experiment"
	"dimprune/internal/simnet"
	"dimprune/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "prunesim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("prunesim", flag.ContinueOnError)
	var (
		subs        = fs.Int("subs", 20000, "number of subscriptions (paper: 200000)")
		events      = fs.Int("events", 10000, "number of measurement events (paper: 100000)")
		train       = fs.Int("train", 5000, "events used to train the selectivity model")
		checkpoints = fs.Int("checkpoints", 11, "abscissa points including 0 and 1")
		brokers     = fs.Int("brokers", 5, "brokers in the distributed overlay")
		topology    = fs.String("topology", "line", "distributed overlay shape: line, star, tree, tree:<fanout>, random:<seed>")
		seed        = fs.Uint64("seed", 1, "workload seed")
		wl          = fs.String("workload", "auction", "workload scenario: "+strings.Join(workload.Names(), ", "))
		setting     = fs.String("setting", "both", "centralized, distributed, or both")
		dims        = fs.String("dims", "sel,eff,mem", "heuristics to sweep (comma-separated: sel, eff, mem)")
		figure      = fs.String("figure", "", "print only one figure (1a..1f)")
		format      = fs.String("format", "table", "output format: table, csv, plot, or summary")
		innermost   = fs.String("innermost", "default", "innermost pruning restriction: default, on, off")
		noTieBreak  = fs.Bool("no-tiebreak", false, "disable the secondary/tertiary dimension orders")
		covering    = fs.Bool("covering", true, "covering forest on distributed brokers (off = forward every subscription to every peer)")
		fleetSizes  = fs.String("fleet-shards", "1,2,4", "fleet sizes for -setting fleet (comma-separated shard counts)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := experiment.DefaultConfig()
	cfg.Subs = *subs
	cfg.Events = *events
	cfg.TrainEvents = *train
	cfg.Checkpoints = *checkpoints
	cfg.Brokers = *brokers
	cfg.Topology = *topology
	if _, err := simnet.ParseTopology(*topology, *brokers); err != nil {
		return fmt.Errorf("bad -topology: %w", err)
	}
	if _, ok := workload.Lookup(*wl); !ok {
		return fmt.Errorf("unknown -workload %q (registered: %s)", *wl, strings.Join(workload.Names(), ", "))
	}
	cfg.Workload = *wl
	cfg.Seed = *seed
	cfg.PruneOptions.DisableTieBreak = *noTieBreak
	cfg.DisableCovering = !*covering
	switch *innermost {
	case "default":
	case "on":
		cfg.PruneOptions.Innermost = core.InnermostOn
	case "off":
		cfg.PruneOptions.Innermost = core.InnermostOff
	default:
		return fmt.Errorf("unknown -innermost value %q", *innermost)
	}

	cfg.Dimensions = nil
	for _, d := range strings.Split(*dims, ",") {
		switch strings.TrimSpace(d) {
		case "sel":
			cfg.Dimensions = append(cfg.Dimensions, core.DimNetwork)
		case "eff":
			cfg.Dimensions = append(cfg.Dimensions, core.DimThroughput)
		case "mem":
			cfg.Dimensions = append(cfg.Dimensions, core.DimMemory)
		case "":
		default:
			return fmt.Errorf("unknown dimension %q (want sel, eff, mem)", d)
		}
	}

	// The fleet setting is a horizontal-scaling sweep, not a pruning sweep:
	// it reuses the workload flags and prints its own figure.
	if *setting == "fleet" {
		fcfg := experiment.DefaultFleetConfig()
		fcfg.Subs = *subs
		fcfg.Events = *events
		fcfg.Workload = *wl
		fcfg.Seed = *seed
		fcfg.DisableCovering = !*covering
		fcfg.ShardCounts = nil
		for _, f := range strings.Split(*fleetSizes, ",") {
			f = strings.TrimSpace(f)
			if f == "" {
				continue
			}
			n, err := strconv.Atoi(f)
			if err != nil {
				return fmt.Errorf("bad -fleet-shards entry %q: %w", f, err)
			}
			fcfg.ShardCounts = append(fcfg.ShardCounts, n)
		}
		res, err := experiment.RunFleet(fcfg)
		if err != nil {
			return err
		}
		fmt.Fprint(out, experiment.FleetSummary(res))
		return nil
	}

	var results []*experiment.Result
	if *setting == "centralized" || *setting == "both" {
		res, err := experiment.RunCentralized(cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	if *setting == "distributed" || *setting == "both" {
		res, err := experiment.RunDistributed(cfg)
		if err != nil {
			return err
		}
		results = append(results, res)
	}
	if len(results) == 0 {
		return fmt.Errorf("unknown -setting %q (want centralized, distributed, both, fleet)", *setting)
	}

	for _, res := range results {
		if *format == "summary" {
			fmt.Fprint(out, experiment.Summary(res))
			continue
		}
		for _, fig := range experiment.Figures(res) {
			if *figure != "" && fig.ID != *figure {
				continue
			}
			switch *format {
			case "table":
				fmt.Fprintln(out, experiment.RenderTable(fig))
			case "csv":
				fmt.Fprintf(out, "# figure %s — %s\n", fig.ID, fig.Title)
				fmt.Fprint(out, experiment.RenderCSV(fig))
				fmt.Fprintln(out)
			case "plot":
				fmt.Fprintln(out, experiment.RenderASCII(fig, 64, 16))
			default:
				return fmt.Errorf("unknown -format %q", *format)
			}
		}
	}
	return nil
}
