package main

import (
	"strings"
	"testing"
)

func TestParseBenchOutput(t *testing.T) {
	in := `goos: linux
goarch: amd64
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDispatchFanout/fanout=8         	  250881	     17138 ns/op	    3379 B/op	      55 allocs/op
BenchmarkWireRoundTrip 	 1362114	      2248 ns/op	  78.30 MB/s	    2280 B/op	      30 allocs/op
BenchmarkEncodeMessage 	13756011	       169.9 ns/op	1018.33 MB/s
PASS
ok  	dimprune/internal/wire	11.087s
`
	rep, err := parse(strings.NewReader(in), "baseline")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Label != "baseline" {
		t.Errorf("label = %q", rep.Label)
	}
	if len(rep.Raw) != 3 || len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d raw / %d benchmarks, want 3/3", len(rep.Raw), len(rep.Benchmarks))
	}
	fan := rep.Benchmarks["BenchmarkDispatchFanout/fanout=8"]
	if fan.NsOp != 17138 || fan.BOp == nil || *fan.BOp != 3379 || fan.AllocsOp == nil || *fan.AllocsOp != 55 {
		t.Errorf("fanout metrics wrong: %+v", fan)
	}
	if fan.MBs != nil {
		t.Error("fanout reported MB/s it does not have")
	}
	enc := rep.Benchmarks["BenchmarkEncodeMessage"]
	if enc.NsOp != 169.9 || enc.MBs == nil || *enc.MBs != 1018.33 || enc.BOp != nil {
		t.Errorf("encode metrics wrong: %+v", enc)
	}
}

func TestParseSkipsMalformed(t *testing.T) {
	in := "BenchmarkBroken  12  garbage ns/op\nBenchmarkNoNs  5  7 B/op\n"
	rep, err := parse(strings.NewReader(in), "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("malformed lines parsed: %+v", rep.Benchmarks)
	}
}
