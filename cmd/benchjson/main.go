// Command benchjson converts `go test -bench` output into the JSON the
// perf-trajectory files (BENCH_<n>.json) are built from: one record per
// benchmark with ns/op, MB/s, B/op, and allocs/op where present, plus the
// raw benchmark lines for benchstat.
//
// Usage:
//
//	go test -bench ... ./... | benchjson -label after > bench.json
//
// Output shape:
//
//	{
//	  "label": "after",
//	  "raw": ["BenchmarkFoo  100  123 ns/op ..."],
//	  "benchmarks": {"BenchmarkFoo": {"ns_op": 123, "allocs_op": 4}}
//	}
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Metrics is one benchmark's parsed measurements. Pointer fields distinguish
// "not reported" from zero.
type Metrics struct {
	NsOp     float64  `json:"ns_op"`
	MBs      *float64 `json:"mb_s,omitempty"`
	BOp      *float64 `json:"b_op,omitempty"`
	AllocsOp *float64 `json:"allocs_op,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Label      string             `json:"label,omitempty"`
	Raw        []string           `json:"raw"`
	Benchmarks map[string]Metrics `json:"benchmarks"`
}

func main() {
	label := flag.String("label", "", "label recorded in the output (e.g. baseline, after)")
	flag.Parse()
	rep, err := parse(os.Stdin, *label)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parse reads benchmark lines from r. Lines not starting with "Benchmark"
// (build noise, PASS/ok trailers) are skipped.
func parse(r io.Reader, label string) (*Report, error) {
	rep := &Report{Label: label, Benchmarks: make(map[string]Metrics)}
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		name, m, ok := parseLine(line)
		if !ok {
			continue
		}
		rep.Raw = append(rep.Raw, line)
		rep.Benchmarks[name] = m
	}
	return rep, sc.Err()
}

// parseLine parses one "BenchmarkName  N  12.3 ns/op  4 B/op ..." line.
func parseLine(line string) (string, Metrics, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return "", Metrics{}, false
	}
	name := fields[0]
	var m Metrics
	seenNs := false
	// Fields come in value-unit pairs after the iteration count.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", Metrics{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			m.NsOp = v
			seenNs = true
		case "MB/s":
			m.MBs = &v
		case "B/op":
			m.BOp = &v
		case "allocs/op":
			m.AllocsOp = &v
		}
	}
	return name, m, seenNs
}
