// Command wlgen generates a registered workload scenario to files, so
// experiments outside this repository (or across tools) can consume the
// exact deterministic event and subscription streams.
//
//	wlgen -subs 1000 -events 5000 -out ./workload
//	wlgen -workload sensornet -subs 1000 -events 5000 -out ./telemetry
//
// writes <out>/subscriptions.txt (id, subscriber, and expression in the
// text syntax, tab-separated) and <out>/events.txt (one rendered event
// per line), or length-prefixed wire frames with -format wire
// (subscriptions.bin / events.bin).
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dimprune/internal/wire"
	"dimprune/internal/workload"

	// Populate the workload registry with the standard scenarios.
	_ "dimprune/internal/auction"
	_ "dimprune/internal/sensornet"
	_ "dimprune/internal/ticker"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("wlgen", flag.ContinueOnError)
	var (
		subs   = fs.Int("subs", 1000, "subscriptions to generate")
		events = fs.Int("events", 5000, "events to generate")
		seed   = fs.Uint64("seed", 1, "workload seed")
		wl     = fs.String("workload", "auction", "workload scenario: "+strings.Join(workload.Names(), ", "))
		out    = fs.String("out", ".", "output directory")
		format = fs.String("format", "text", "output format: text or wire")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *format != "text" && *format != "wire" {
		return fmt.Errorf("unknown -format %q", *format)
	}
	gen, err := workload.New(*wl, *seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	ext := ".txt"
	if *format == "wire" {
		ext = ".bin"
	}
	if err := writeFile(filepath.Join(*out, "subscriptions"+ext), func(w *bufio.Writer) error {
		for i := 1; i <= *subs; i++ {
			s, err := gen.Subscription(uint64(i), fmt.Sprintf("client-%d", i))
			if err != nil {
				return err
			}
			if *format == "text" {
				if _, err := fmt.Fprintf(w, "%d\t%s\t%s\n", s.ID, s.Subscriber, s); err != nil {
					return err
				}
				continue
			}
			if err := wire.WriteFrame(w, wire.SubscribeFrame(s)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	if err := writeFile(filepath.Join(*out, "events"+ext), func(w *bufio.Writer) error {
		for i := 1; i <= *events; i++ {
			m := gen.Event(uint64(i))
			if *format == "text" {
				if _, err := fmt.Fprintln(w, m); err != nil {
					return err
				}
				continue
			}
			if err := wire.WriteFrame(w, wire.PublishFrame(m)); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Printf("wrote %d subscriptions and %d events of workload %s to %s (%s format)\n",
		*subs, *events, gen.Name(), *out, *format)
	return nil
}

func writeFile(path string, fill func(*bufio.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriterSize(f, 1<<20)
	if err := fill(w); err != nil {
		_ = f.Close()
		return err
	}
	if err := w.Flush(); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
