package main

import (
	"bufio"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dimprune/internal/wire"
)

func TestTextOutput(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-subs", "20", "-events", "30", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	subs, err := os.ReadFile(filepath.Join(dir, "subscriptions.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(subs)), "\n")
	if len(lines) != 20 {
		t.Fatalf("%d subscription lines, want 20", len(lines))
	}
	fields := strings.SplitN(lines[0], "\t", 3)
	if len(fields) != 3 || fields[0] != "1" || !strings.HasPrefix(fields[1], "client-") {
		t.Errorf("bad line format: %q", lines[0])
	}
	events, err := os.ReadFile(filepath.Join(dir, "events.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(strings.Split(strings.TrimSpace(string(events)), "\n")); got != 30 {
		t.Fatalf("%d event lines, want 30", got)
	}
}

func TestWireOutputDecodes(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-subs", "15", "-events", "25", "-format", "wire", "-out", dir}); err != nil {
		t.Fatal(err)
	}
	count := func(path string, wantType wire.FrameType) int {
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		r := bufio.NewReader(f)
		n := 0
		for {
			fr, err := wire.ReadFrame(r)
			if errors.Is(err, io.EOF) {
				return n
			}
			if err != nil {
				t.Fatalf("%s: frame %d: %v", path, n, err)
			}
			if fr.Type != wantType {
				t.Fatalf("%s: frame %d has type %v", path, n, fr.Type)
			}
			n++
		}
	}
	if got := count(filepath.Join(dir, "subscriptions.bin"), wire.FrameSubscribe); got != 15 {
		t.Errorf("%d subscription frames, want 15", got)
	}
	if got := count(filepath.Join(dir, "events.bin"), wire.FramePublish); got != 25 {
		t.Errorf("%d event frames, want 25", got)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	dir1, dir2 := t.TempDir(), t.TempDir()
	args := []string{"-subs", "10", "-events", "10", "-seed", "7"}
	if err := run(append(args, "-out", dir1)); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-out", dir2)); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"subscriptions.txt", "events.txt"} {
		a, _ := os.ReadFile(filepath.Join(dir1, name))
		b, _ := os.ReadFile(filepath.Join(dir2, name))
		if string(a) != string(b) {
			t.Errorf("%s differs between identical runs", name)
		}
	}
}

func TestBadFormat(t *testing.T) {
	if err := run([]string{"-format", "json", "-out", t.TempDir()}); err == nil {
		t.Error("bad format accepted")
	}
}

func TestWorkloadSelection(t *testing.T) {
	// Each registered scenario exports through the same pipeline, and the
	// streams differ between scenarios.
	outs := map[string]string{}
	for _, wl := range []string{"auction", "ticker", "sensornet"} {
		dir := t.TempDir()
		if err := run([]string{"-workload", wl, "-subs", "10", "-events", "10", "-out", dir}); err != nil {
			t.Fatalf("workload %s: %v", wl, err)
		}
		events, err := os.ReadFile(filepath.Join(dir, "events.txt"))
		if err != nil {
			t.Fatal(err)
		}
		outs[wl] = string(events)
	}
	if outs["auction"] == outs["ticker"] || outs["ticker"] == outs["sensornet"] {
		t.Error("different workloads produced identical event streams")
	}
}

func TestBadWorkload(t *testing.T) {
	if err := run([]string{"-workload", "bogus", "-out", t.TempDir()}); err == nil {
		t.Error("unknown workload accepted")
	}
}
