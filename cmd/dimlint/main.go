// Command dimlint machine-checks the repo's load-bearing invariants:
// encode-once frame ownership (refbalance), the broker's two-plane locking
// discipline (lockplane), pooled-buffer escape rules (poolescape),
// golden-seed workload determinism (determinism), and hot-path allocation
// discipline (hotpathiter).
//
// Two modes share the same analyzers:
//
//	dimlint ./...                              # standalone, loads via `go list -export`
//	go vet -vettool=$(command -v dimlint) ./... # unit mode, driven by cmd/go
//
// Flags: -json emits diagnostics as JSON on stdout (exit 0; diagnostics
// are data). Per-analyzer boolean flags (-refbalance, -lockplane, ...)
// restrict the run to the named analyzers. With no diagnostics the exit
// code is 0; plain-mode diagnostics exit 2; driver errors exit 1.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dimprune/internal/analysis"
	"dimprune/internal/analysis/load"
	"dimprune/internal/analysis/unit"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	// cmd/go probes the tool before using it: -V=full asks for a version
	// line that keys the vet result cache, -flags asks which flags the tool
	// understands. Both print and exit without analyzing anything.
	for _, a := range args {
		if a == "-V=full" || a == "-V" || a == "--V=full" {
			printVersion()
			return 0
		}
		if a == "-flags" || a == "--flags" {
			printFlagDefs()
			return 0
		}
	}

	fs := flag.NewFlagSet("dimlint", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: dimlint [flags] [patterns | vet.cfg]\n\nAnalyzers:\n")
		for _, a := range analysis.All() {
			fmt.Fprintf(fs.Output(), "  %-12s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(fs.Output(), "\nFlags:\n")
		fs.PrintDefaults()
	}
	asJSON := fs.Bool("json", false, "emit diagnostics as JSON on stdout")
	enabled := make(map[string]*bool)
	for _, a := range analysis.All() {
		enabled[a.Name] = fs.Bool(a.Name, false, "run only the named analyzers: "+a.Doc)
	}
	if err := fs.Parse(args); err != nil {
		return 1
	}

	analyzers := selectAnalyzers(enabled)
	rest := fs.Args()

	// Unit mode: cmd/go hands the tool a single vet.cfg path.
	if len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return unit.Run(rest[0], analyzers, *asJSON)
	}

	// Standalone mode: resolve patterns like the go tool would.
	pkgs, err := load.Load(".", rest)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dimlint: %v\n", err)
		return 1
	}
	byPkg := make(map[string][]analysis.Diagnostic)
	total := 0
	for _, pkg := range pkgs {
		diags, err := analysis.RunAnalyzers(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dimlint: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			byPkg[pkg.Types.Path()] = diags
			total += len(diags)
		}
	}
	if *asJSON {
		unit.WriteJSON(os.Stdout, byPkg)
		return 0
	}
	for _, pkg := range pkgs {
		for _, d := range byPkg[pkg.Types.Path()] {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
	}
	if total > 0 {
		return 2
	}
	return 0
}

// selectAnalyzers returns the analyzers whose flags were set, or the whole
// suite when none were.
func selectAnalyzers(enabled map[string]*bool) []*analysis.Analyzer {
	any := false
	for _, on := range enabled {
		if *on {
			any = true
		}
	}
	all := analysis.All()
	if !any {
		return all
	}
	var picked []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			picked = append(picked, a)
		}
	}
	return picked
}

// printVersion answers cmd/go's -V=full probe. The line must read
// "<name> version devel ... buildID=<id>"; the id keys the vet result
// cache, so it is a hash of the tool's own binary — rebuilding dimlint
// invalidates stale cached results.
func printVersion() {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))[:32]
			}
			f.Close()
		}
	}
	fmt.Printf("dimlint version devel buildID=%s\n", id)
}

// printFlagDefs answers cmd/go's -flags probe with the JSON flag
// descriptions it uses to validate pass-through flags.
func printFlagDefs() {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []flagDef{{Name: "json", Bool: true, Usage: "emit diagnostics as JSON on stdout"}}
	for _, a := range analysis.All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: a.Doc})
	}
	out, _ := json.Marshal(defs)
	fmt.Println(string(out))
}
