// Command brokerd runs a single publish/subscribe broker over TCP.
//
// Brokers form an acyclic overlay: each broker listens for neighbor links
// and dials the peers listed on its command line (list each edge on exactly
// one side). Clients connect to the client port, introduce themselves with
// a hello frame, and then subscribe/publish (see transport.Client).
//
// A three-broker line on one machine:
//
//	brokerd -id b0 -listen :7000 -clients :8000
//	brokerd -id b1 -listen :7001 -clients :8001 -peer 127.0.0.1:7000
//	brokerd -id b2 -listen :7002 -clients :8002 -peer 127.0.0.1:7001
//
// -peer (repeatable) opens a managed peer link: the brokers handshake,
// refuse edges that would close an overlay cycle, replay their routing
// tables to each other, and the dialing side automatically reconnects and
// resyncs when the link drops. The legacy -peers list attaches raw links
// with none of that (no handshake, no reconnect); its link IDs are stable
// in flag order, which -snapshot restore relies on.
//
// With -prune-every set, the broker periodically applies a batch of
// prunings to its non-local routing entries using the selected dimension.
//
// # Fleet modes
//
// A fleet partitions the subscription space across OS-process shards behind
// one coordinator (see internal/fleet). Each shard is a plain brokerd with
// -fleet-serve; the coordinator is a brokerd with -fleet listing the shard
// addresses, and clients attach to its -clients port exactly as they would
// to a single broker:
//
//	brokerd -id s0 -fleet-serve :9000
//	brokerd -id s1 -fleet-serve :9001
//	brokerd -id coord -fleet 127.0.0.1:9000,127.0.0.1:9001 -clients :8000
//
// -fleet is exclusive with the overlay flags (-listen, -peer, -peers):
// shards hold partitions as local entries, so a coordinator is not an
// overlay node.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dimprune/internal/broker"
	"dimprune/internal/core"
	"dimprune/internal/fleet"
	"dimprune/internal/transport"
	"dimprune/internal/wal"
)

func main() {
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := run(os.Args[1:], stop); err != nil {
		fmt.Fprintln(os.Stderr, "brokerd:", err)
		os.Exit(1)
	}
}

func run(args []string, stop <-chan os.Signal) error {
	fs := flag.NewFlagSet("brokerd", flag.ContinueOnError)
	var (
		id           = fs.String("id", "broker", "broker name for logs")
		listen       = fs.String("listen", "", "address for neighbor-broker links (empty: none)")
		clients      = fs.String("clients", "", "address for client sessions (empty: none)")
		peers        = fs.String("peers", "", "comma-separated neighbor addresses to attach as raw links (legacy: no handshake, no reconnect)")
		dimension    = fs.String("dimension", "sel", "pruning dimension: sel, eff, mem")
		pruneEvery   = fs.Duration("prune-every", 0, "interval between pruning batches (0: never prune)")
		pruneBatch   = fs.Int("prune-batch", 100, "prunings per batch")
		statsEvery   = fs.Duration("stats-every", time.Minute, "interval between stats log lines (0: never)")
		snapshot     = fs.String("snapshot", "", "routing-table snapshot file: loaded on start if present, written on shutdown")
		matchWorkers = fs.Int("match-workers", 0, "goroutines one match fans out across (0: GOMAXPROCS, 1: serial)")
		matchShards  = fs.Int("match-shards", 0, "subscription-table shards (0: auto from match workers)")
		covering     = fs.Bool("covering", true, "covering forest on the control plane (off = forward every subscription to every peer)")
		walDir       = fs.String("wal-dir", "", "event-log directory for durable subscriptions (empty: durables disabled)")
		walFsync     = fs.Bool("wal-fsync", false, "fsync each event-log append (stronger crash durability, much slower)")
		fleetServe   = fs.String("fleet-serve", "", "address to serve this broker as a fleet shard (empty: not a shard)")
		fleetAddrs   = fs.String("fleet", "", "comma-separated shard addresses to coordinate a fleet over (coordinator mode)")
	)
	var peerAddrs addrList
	fs.Var(&peerAddrs, "peer", "neighbor address to dial as a managed peer link (handshake + reconnect; repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *fleetAddrs != "" {
		if *listen != "" || *peers != "" || len(peerAddrs) > 0 || *fleetServe != "" {
			return fmt.Errorf("-fleet (coordinator mode) excludes -listen, -peer, -peers, and -fleet-serve")
		}
		return runFleetCoordinator(*id, *fleetAddrs, *clients, *statsEvery, stop)
	}

	var dim core.Dimension
	switch *dimension {
	case "sel":
		dim = core.DimNetwork
	case "eff":
		dim = core.DimThroughput
	case "mem":
		dim = core.DimMemory
	default:
		return fmt.Errorf("unknown -dimension %q (want sel, eff, mem)", *dimension)
	}

	// Workers and shards auto-size from GOMAXPROCS when left at 0.
	b, err := broker.New(broker.Config{
		ID:              *id,
		Dimension:       dim,
		ObserveEvents:   true,
		MatchWorkers:    *matchWorkers,
		MatchShards:     *matchShards,
		DisableCovering: !*covering,
	})
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, *id+" ", log.LstdFlags)
	srv := transport.NewServer(b, func(d broker.Delivery) {
		// Deliveries for subscribers without an attached session are logged;
		// attached clients receive theirs over their connection.
		logger.Printf("undeliverable notification for %q (no session): event %d", d.Subscriber, d.Msg.ID)
	})
	defer srv.Shutdown()
	srv.SetLogf(logger.Printf)
	if *walDir != "" {
		w, err := wal.Open(wal.Options{Dir: *walDir, Sync: *walFsync})
		if err != nil {
			return fmt.Errorf("open wal %s: %w", *walDir, err)
		}
		// Close after Shutdown (LIFO defers): the durable pumps must stop
		// before the store flushes its cursors and closes the segments.
		defer func() { _ = w.Close() }()
		srv.SetWAL(w)
		logger.Printf("durable event log in %s (%d registered durables, last seq %d, fsync %v)",
			*walDir, len(w.Names()), w.LastSeq(), *walFsync)
	}

	// Dial static raw links first: their link IDs follow flag order, which
	// is what makes snapshot restore stable across restarts. Listeners and
	// managed peer links come afterwards; those links get higher IDs.
	for _, p := range strings.Split(*peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		if _, err := srv.DialLink(p); err != nil {
			return fmt.Errorf("dial peer %s: %w", p, err)
		}
		logger.Printf("linked to %s", p)
	}
	if *snapshot != "" {
		if err := loadSnapshot(srv, *snapshot, logger); err != nil {
			return err
		}
	}
	if *listen != "" {
		addr, err := srv.Listen(*listen)
		if err != nil {
			return err
		}
		logger.Printf("broker links on %s", addr)
	}
	if *clients != "" {
		addr, err := srv.ListenClients(*clients)
		if err != nil {
			return err
		}
		logger.Printf("client sessions on %s", addr)
	}
	if *fleetServe != "" {
		ln, err := net.Listen("tcp", *fleetServe)
		if err != nil {
			return fmt.Errorf("fleet-serve listen %s: %w", *fleetServe, err)
		}
		defer ln.Close()
		shard := fleet.NewShardServer(b)
		shard.SetLogf(logger.Printf)
		go func() { _ = shard.Serve(ln) }()
		logger.Printf("fleet shard on %s", ln.Addr())
	}
	// Managed peer links: handshake (acyclicity check), state replay, and
	// reconnect-with-resync on loss. A refused or unreachable peer fails
	// startup; later losses are the reconnect loop's job.
	for _, p := range peerAddrs {
		if _, err := srv.DialPeer(p); err != nil {
			return err
		}
	}

	var pruneTick, statsTick <-chan time.Time
	if *pruneEvery > 0 {
		t := time.NewTicker(*pruneEvery)
		defer t.Stop()
		pruneTick = t.C
	}
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		statsTick = t.C
	}

	logger.Printf("running (dimension %s, match workers %d, shards %d, covering %v; 0 = auto)",
		dim, *matchWorkers, *matchShards, *covering)
	for {
		select {
		case <-stop:
			logger.Printf("shutting down")
			if *snapshot != "" {
				if err := saveSnapshot(srv, *snapshot, logger); err != nil {
					return err
				}
			}
			return nil
		case <-pruneTick:
			if n := srv.Prune(*pruneBatch); n > 0 {
				st := srv.Stats()
				logger.Printf("pruned %d entries (total %d, %d remaining, %d associations)",
					n, st.PruningsDone, st.PruneRemained, st.Associations)
			}
		case <-statsTick:
			st := srv.Stats()
			logger.Printf("stats: local=%d remote=%d assoc=%d preds=%d %s",
				st.LocalSubs, st.RemoteSubs, st.Associations, st.Predicates, st.Counters)
			if hop := srv.HopLatency(); hop.Count > 0 {
				logger.Printf("hop latency: %s", hop)
			}
			logDeliveryHotspots(st, logger)
		}
	}
}

// runFleetCoordinator runs the daemon as a fleet coordinator: dial every
// shard, fold their advertisements into the scatter index, and front the
// fleet with the client wire protocol.
func runFleetCoordinator(id, shardList, clients string, statsEvery time.Duration, stop <-chan os.Signal) error {
	logger := log.New(os.Stderr, id+" ", log.LstdFlags)
	coord := fleet.NewCoordinator()
	defer func() { _ = coord.Close() }()
	n := 0
	for _, a := range strings.Split(shardList, ",") {
		a = strings.TrimSpace(a)
		if a == "" {
			continue
		}
		sh, err := fleet.DialShard(fmt.Sprintf("shard%d", n), a)
		if err != nil {
			return err
		}
		if err := coord.AddShard(sh); err != nil {
			return err
		}
		logger.Printf("fleet: shard%d at %s", n, a)
		n++
	}
	if n == 0 {
		return fmt.Errorf("-fleet lists no shard addresses")
	}
	cs := fleet.NewClientServer(coord)
	cs.SetLogf(logger.Printf)
	defer cs.Shutdown()
	if clients != "" {
		addr, err := cs.Listen(clients)
		if err != nil {
			return err
		}
		logger.Printf("client sessions on %s", addr)
	}
	var statsTick <-chan time.Time
	if statsEvery > 0 {
		t := time.NewTicker(statsEvery)
		defer t.Stop()
		statsTick = t.C
	}
	logger.Printf("coordinating %d shards", n)
	for {
		select {
		case <-stop:
			logger.Printf("shutting down")
			return nil
		case <-statsTick:
			st := coord.Stats()
			logger.Printf("fleet stats: shards=%v subs=%d index=%d publishes=%d scattered=%d skipped=%d deduped=%d moved=%d",
				coord.Shards(), coord.NumSubscriptions(), coord.IndexSize(),
				st.Publishes, st.ShardPublishes, st.ShardsSkipped, st.Deduped, st.Moved)
		}
	}
}

// addrList collects a repeatable address flag.
type addrList []string

func (a *addrList) String() string { return strings.Join(*a, ",") }

func (a *addrList) Set(v string) error {
	v = strings.TrimSpace(v)
	if v == "" {
		return fmt.Errorf("empty peer address")
	}
	*a = append(*a, v)
	return nil
}

// logDeliveryHotspots surfaces the per-entry delivery metadata in Stats:
// the busiest subscriber and, separately, the entry shedding the most to
// its backpressure policy — the two an operator acts on first.
func logDeliveryHotspots(st broker.Stats, logger *log.Logger) {
	var busiest, loss *broker.EntryDelivery
	for i := range st.Delivery {
		ed := &st.Delivery[i]
		if ed.Delivered > 0 && (busiest == nil || ed.Delivered > busiest.Delivered) {
			busiest = ed
		}
		if ed.Dropped > 0 && (loss == nil || ed.Dropped > loss.Dropped) {
			loss = ed
		}
	}
	if busiest != nil {
		logger.Printf("delivery: busiest sub %d (%q): delivered=%d dropped=%d",
			busiest.SubID, busiest.Subscriber, busiest.Delivered, busiest.Dropped)
	}
	if loss != nil && loss != busiest {
		logger.Printf("delivery: lossiest sub %d (%q): delivered=%d dropped=%d",
			loss.SubID, loss.Subscriber, loss.Delivered, loss.Dropped)
	}
}

// loadSnapshot restores the routing table right after the static raw
// links are dialed: entries referencing those links (stable IDs in flag
// order) restore exactly; entries referencing links that do not exist yet
// — accepted connections and managed -peer links, neither of which has a
// stable identity across restarts — are skipped, which is safe because
// managed peers replay their entries through the reconnect resync. The
// logged local/remote counts show what survived. A missing file is a
// first start, not an error.
func loadSnapshot(srv *transport.Server, path string, logger *log.Logger) error {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	defer f.Close()
	if err := srv.ReadSnapshot(f); err != nil {
		return fmt.Errorf("load snapshot %s: %w", path, err)
	}
	st := srv.Stats()
	logger.Printf("restored snapshot %s: %d local, %d remote entries",
		path, st.LocalSubs, st.RemoteSubs)
	return nil
}

// saveSnapshot writes the routing table atomically (temp file + rename).
func saveSnapshot(srv *transport.Server, path string, logger *log.Logger) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := srv.WriteSnapshot(f); err != nil {
		_ = f.Close()
		return fmt.Errorf("write snapshot %s: %w", tmp, err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	logger.Printf("wrote snapshot %s", path)
	return nil
}
