package main

import (
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/transport"
)

// start runs brokerd with the given args in a goroutine and returns a stop
// function that shuts it down and reports its error.
func start(t *testing.T, args ...string) func() error {
	t.Helper()
	stop := make(chan os.Signal, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(args, stop) }()
	return func() error {
		stop <- os.Interrupt
		select {
		case err := <-errc:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("brokerd did not shut down")
			return nil
		}
	}
}

func TestBadFlags(t *testing.T) {
	if err := run([]string{"-dimension", "sideways"}, nil); err == nil {
		t.Error("bad dimension accepted")
	}
	if err := run([]string{"-listen", "300.0.0.1:bad"}, nil); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run([]string{"-peers", "127.0.0.1:1"}, nil); err == nil {
		t.Error("unreachable peer accepted")
	}
}

func TestStartAndShutdown(t *testing.T) {
	stop := start(t, "-id", "t0", "-listen", "127.0.0.1:0", "-clients", "127.0.0.1:0",
		"-prune-every", "10ms", "-prune-batch", "5", "-stats-every", "10ms")
	time.Sleep(50 * time.Millisecond) // let tickers fire at least once
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestTwoDaemonsLink(t *testing.T) {
	// Daemon A listens on a fixed ephemeral port we learn via a probe run.
	// Since run() logs rather than returns the address, use a fixed port
	// chosen by the OS for A, then point B at it: bind a throwaway listener
	// to discover a free port first.
	addr := freePort(t)
	stopA := start(t, "-id", "a", "-listen", addr)
	time.Sleep(50 * time.Millisecond)
	stopB := start(t, "-id", "b", "-peers", addr)
	time.Sleep(50 * time.Millisecond)
	if err := stopB(); err != nil {
		t.Errorf("daemon b: %v", err)
	}
	if err := stopA(); err != nil {
		t.Errorf("daemon a: %v", err)
	}
}

func TestThreeDaemonLineViaManagedPeers(t *testing.T) {
	// b0 listens; b1 peers with b0 and listens; b2 peers with b1. A client
	// at b2 subscribes, a client at b0 publishes, and the event crosses
	// both managed links.
	addr0, addr1 := freePort(t), freePort(t)
	clients0, clients2 := freePort(t), freePort(t)
	stop0 := start(t, "-id", "b0", "-listen", addr0, "-clients", clients0)
	waitDial(t, addr0)
	stop1 := start(t, "-id", "b1", "-listen", addr1, "-peer", addr0)
	waitDial(t, addr1)
	stop2 := start(t, "-id", "b2", "-clients", clients2, "-peer", addr1)
	waitDial(t, clients2)

	conn2, err := transport.Dial(clients2)
	if err != nil {
		t.Fatal(err)
	}
	sub := transport.NewClient("sue", conn2)
	defer sub.Close()
	h, err := sub.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}

	waitDial(t, clients0)
	conn0, err := transport.Dial(clients0)
	if err != nil {
		t.Fatal(err)
	}
	pub := transport.NewClient("pat", conn0)
	defer pub.Close()
	// The subscription needs two hops to reach b0; publish until it lands.
	got := make(chan struct{})
	go func() {
		if m, ok := <-h.C(); ok && m != nil {
			close(got)
		}
	}()
	deadline := time.After(10 * time.Second)
	for delivered := false; !delivered; {
		if err := pub.Publish(event.Build(1).Int("x", 1).Msg()); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
			delivered = true
		case <-deadline:
			t.Fatal("event never crossed the managed peer links")
		case <-time.After(20 * time.Millisecond):
		}
	}

	for i, stop := range []func() error{stop2, stop1, stop0} {
		if err := stop(); err != nil {
			t.Errorf("daemon %d: %v", i, err)
		}
	}
}

func TestDaemonRefusesCycleEdge(t *testing.T) {
	addr0, addr1 := freePort(t), freePort(t)
	stop0 := start(t, "-id", "b0", "-listen", addr0)
	waitDial(t, addr0)
	stop1 := start(t, "-id", "b1", "-listen", addr1, "-peer", addr0)
	waitDial(t, addr1)
	// A third daemon peering with both ends would close the cycle: run()
	// must fail instead of joining. The pre-fired stop channel turns a
	// refusal regression into a crisp assertion failure (run would return
	// nil) rather than a package-timeout hang on a nil channel.
	stop := make(chan os.Signal, 1)
	stop <- os.Interrupt
	if err := run([]string{"-id", "b2", "-peer", addr1, "-peer", addr0}, stop); err == nil {
		t.Error("cycle-closing daemon started")
	}
	if err := run([]string{"-peer", " "}, nil); err == nil {
		t.Error("empty -peer accepted")
	}
	if err := stop1(); err != nil {
		t.Errorf("daemon b1: %v", err)
	}
	if err := stop0(); err != nil {
		t.Errorf("daemon b0: %v", err)
	}
}

func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	_ = ln.Close()
	return addr
}

func TestSnapshotAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "broker.snap")
	clientAddr := freePort(t)

	// First life: a client subscribes, then the daemon shuts down and
	// writes the snapshot.
	stop1 := start(t, "-id", "s0", "-clients", clientAddr, "-snapshot", snap)
	waitDial(t, clientAddr)
	conn, err := transport.Dial(clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient("carol", conn)
	if err := client.Subscribe(1, subscription.MustParse(`x = 1`)); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond) // let the frame land
	client.Close()
	if err := stop1(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(snap); err != nil {
		t.Fatalf("snapshot not written: %v", err)
	}

	// Second life: the subscription is back without resubscribing.
	clientAddr2 := freePort(t)
	stop2 := start(t, "-id", "s0", "-clients", clientAddr2, "-snapshot", snap)
	waitDial(t, clientAddr2)
	conn2, err := transport.Dial(clientAddr2)
	if err != nil {
		t.Fatal(err)
	}
	client2 := transport.NewClient("carol", conn2)
	defer client2.Close()
	if err := client2.Publish(event.Build(9).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-client2.Notifications():
		if m.ID != 9 {
			t.Errorf("notification = %s", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("restored subscription did not deliver")
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableAcrossDaemonRestart drives the -wal-dir flag end to end: a
// durable subscription's unacked events replay after the daemon restarts
// over the same log directory — no snapshot involved.
func TestDurableAcrossDaemonRestart(t *testing.T) {
	dir := t.TempDir()
	walDir := filepath.Join(dir, "wal")
	clientAddr := freePort(t)

	stop1 := start(t, "-id", "d0", "-clients", clientAddr, "-wal-dir", walDir)
	waitDial(t, clientAddr)
	conn, err := transport.Dial(clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient("carol", conn)
	d, err := client.DurableSubscribeExpr("ledger", `x >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := client.Publish(event.Build(7).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-d.C():
		if ev.Msg.ID != 7 {
			t.Fatalf("durable delivered event %d, want 7", ev.Msg.ID)
		}
		// Deliberately not acked: it must come back after the restart.
	case <-time.After(5 * time.Second):
		t.Fatal("durable subscription did not deliver")
	}
	client.Close()
	if err := stop1(); err != nil {
		t.Fatal(err)
	}

	clientAddr2 := freePort(t)
	stop2 := start(t, "-id", "d0", "-clients", clientAddr2, "-wal-dir", walDir)
	waitDial(t, clientAddr2)
	conn2, err := transport.Dial(clientAddr2)
	if err != nil {
		t.Fatal(err)
	}
	client2 := transport.NewClient("carol", conn2)
	defer client2.Close()
	d2, err := client2.DurableSubscribeExpr("ledger", `x >= 1`)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-d2.C():
		if ev.Msg.ID != 7 {
			t.Fatalf("replayed event %d, want 7", ev.Msg.ID)
		}
		if err := d2.Ack(ev.Seq); err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("unacked durable event did not replay across restart")
	}
	if err := stop2(); err != nil {
		t.Fatal(err)
	}
}

// waitDial polls until addr accepts connections.
func waitDial(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c, err := net.Dial("tcp", addr)
		if err == nil {
			c.Close()
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never came up", addr)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFleetDaemons drives the fleet flags end to end: two shard daemons, a
// coordinator daemon over them, and a client session against the
// coordinator that subscribes and receives a delivery.
func TestFleetDaemons(t *testing.T) {
	shard0, shard1 := freePort(t), freePort(t)
	clientAddr := freePort(t)
	stopS0 := start(t, "-id", "s0", "-fleet-serve", shard0)
	stopS1 := start(t, "-id", "s1", "-fleet-serve", shard1)
	waitDial(t, shard0)
	waitDial(t, shard1)
	stopC := start(t, "-id", "coord", "-fleet", shard0+","+shard1,
		"-clients", clientAddr, "-stats-every", "10ms")
	waitDial(t, clientAddr)

	conn, err := transport.Dial(clientAddr)
	if err != nil {
		t.Fatal(err)
	}
	client := transport.NewClient("fran", conn)
	defer client.Close()
	h, err := client.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{})
	go func() {
		if m, ok := <-h.C(); ok && m != nil {
			close(got)
		}
	}()
	deadline := time.After(10 * time.Second)
	for delivered := false; !delivered; {
		if err := client.Publish(event.Build(1).Int("x", 1).Msg()); err != nil {
			t.Fatal(err)
		}
		select {
		case <-got:
			delivered = true
		case <-deadline:
			t.Fatal("fleet never delivered to the client session")
		case <-time.After(20 * time.Millisecond):
		}
	}

	for name, stop := range map[string]func() error{"coord": stopC, "s0": stopS0, "s1": stopS1} {
		if err := stop(); err != nil {
			t.Errorf("daemon %s: %v", name, err)
		}
	}
}

// TestFleetFlagValidation pins the mode exclusivity and empty-list errors.
func TestFleetFlagValidation(t *testing.T) {
	if err := run([]string{"-fleet", "127.0.0.1:1", "-listen", "127.0.0.1:0"}, nil); err == nil {
		t.Error("coordinator mode accepted overlay flags")
	}
	if err := run([]string{"-fleet", " , "}, nil); err == nil {
		t.Error("empty -fleet shard list accepted")
	}
	if err := run([]string{"-fleet", "127.0.0.1:1"}, nil); err == nil {
		t.Error("unreachable shard accepted")
	}
}
