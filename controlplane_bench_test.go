package dimprune

import (
	"fmt"
	"testing"

	"dimprune/internal/workload"
)

// BenchmarkControlPlane measures the broker control plane at population —
// the cost the covering forest is supposed to collapse. For each workload,
// line size 3, and population (1k/20k/100k subscriptions), covering on and
// off:
//
//   - op=churn: one subscribe + retract pair against the populated
//     overlay (the marginal control-plane cost the paper's §2.3 covering
//     discussion bounds by O(covers), vs O(subs) without the forest).
//     Reports the steady-state routing footprint of the build as custom
//     metrics: remote entries per hop, control bytes per hop, and the
//     control frames each churn pair emits.
//   - op=resync: a fresh link's full routing replay (AddLink → SyncFrames
//     → DropLink) — link recovery replays the advertisement set, not the
//     table, so frames/resync is the O(covers) claim for link death.
//
// BENCH_6.json records this trajectory; CI re-measures a reduced slice on
// every run (bench-covering job).
func BenchmarkControlPlane(b *testing.B) {
	const brokers = 3
	for _, name := range workload.Names() {
		for _, subs := range []int{1000, 20000, 100000} {
			for _, covering := range []bool{true, false} {
				mode := "on"
				if !covering {
					mode = "off"
				}
				b.Run(fmt.Sprintf("workload=%s/subs=%d/covering=%s", name, subs, mode), func(b *testing.B) {
					var opts []OverlayOption
					if !covering {
						opts = append(opts, WithoutCovering())
					}
					net, err := NewLineOverlay(brokers, Network, opts...)
					if err != nil {
						b.Fatal(err)
					}
					gen, err := workload.New(name, 7)
					if err != nil {
						b.Fatal(err)
					}
					for i := 0; i < subs; i++ {
						s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
						if err != nil {
							b.Fatal(err)
						}
						if err := net.SubscribeAt(i%brokers, s); err != nil {
							b.Fatal(err)
						}
					}
					links := float64(net.Links())
					build := net.Traffic()
					var remote int
					for j := 0; j < brokers; j++ {
						remote += net.Broker(j).Stats().RemoteSubs
					}
					// A separate stream of churn subscriptions, drawn from the
					// same workload so cover shapes stay representative.
					churnGen, err := workload.New(name, 99)
					if err != nil {
						b.Fatal(err)
					}

					b.Run("op=churn", func(b *testing.B) {
						start := net.Traffic().ControlFrames
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							id := uint64(10_000_000 + i)
							s, err := churnGen.Subscription(id, "churn")
							if err != nil {
								b.Fatal(err)
							}
							if err := net.SubscribeAt(0, s); err != nil {
								b.Fatal(err)
							}
							if err := net.UnsubscribeAt(0, id); err != nil {
								b.Fatal(err)
							}
						}
						b.StopTimer()
						delta := net.Traffic().ControlFrames - start
						b.ReportMetric(float64(delta)/float64(b.N), "ctlFrames/op")
						// ReportMetric must follow ResetTimer, which clears
						// custom metrics along with the timings.
						b.ReportMetric(float64(remote)/links, "entries/hop")
						b.ReportMetric(float64(build.ControlBytes)/links, "ctlBytes/hop")
					})

					b.Run("op=resync", func(b *testing.B) {
						bk := net.Broker(brokers / 2) // the inner broker sees the most entries
						var frames int
						b.ResetTimer()
						for i := 0; i < b.N; i++ {
							l := bk.AddLink()
							out, err := bk.SyncFrames(l)
							if err != nil {
								b.Fatal(err)
							}
							frames = len(out)
							bk.DropLink(l)
						}
						b.StopTimer()
						b.ReportMetric(float64(frames), "frames/resync")
					})
				})
			}
		}
	}
}
