package dimprune

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"dimprune/internal/event"
	"dimprune/internal/subscription"
	"dimprune/internal/workload"
)

// Covering-plane tests at the public API surface: a churn storm over the
// real loopback overlay (run under -race in CI) proving that racing cover
// subscribe/unsubscribe cycles never lose a delivery and that retraction
// promotes covered entries back exactly, and the paper-scale acceptance
// run showing the forest collapses control state ≥5x on the
// covering-friendly workload while leaving the covering-hostile one's
// opaque passthrough untouched.

const (
	stormBrokers = 3
	stormStable  = 16  // long-lived specific subscriptions per broker
	stormChurn   = 50  // cover subscribe/unsubscribe cycles per broker
	stormEvents  = 40  // events published per broker during the storm
	// stormChurnBase offsets churn-cover subscription IDs so their
	// deliveries filter cleanly out of the collected set.
	stormChurnBase = uint64(1) << 20
	// stormSentinelBase offsets flush sentinel subscription and event IDs.
	stormSentinelBase = uint64(1) << 31
)

// stormStableID returns the subscription ID of stable sub i at broker j.
func stormStableID(j, i int) uint64 {
	return uint64(j*stormStable + i + 1)
}

// waitControlDrain blocks until the overlay's control plane is drained:
// every control frame sent fleet-wide has been received and applied, the
// totals are nonzero, and they hold still across three consecutive polls
// (receives and their consequent sends are counted under one broker lock,
// so stable equality at a true snapshot means no frame is in flight).
func waitControlDrain(t *testing.T, servers []*Server) {
	t.Helper()
	stable := 0
	var prevSent, prevRecv uint64
	waitForCond(t, 20*time.Second, func() bool {
		var sent, recv uint64
		for _, s := range servers {
			c := s.Stats().Counters
			sent += c.ControlSent
			recv += c.ControlRecv
		}
		if sent == 0 || sent != recv || sent != prevSent || recv != prevRecv {
			prevSent, prevRecv = sent, recv
			stable = 0
			return false
		}
		stable++
		return stable >= 3
	})
}

// TestCoveringChurnStorm races cover churn against live publishers on a
// real 3-broker line. Every broker holds a set of long-lived specific
// subscriptions (mutually non-covering: distinct equality pins); churner
// goroutines cycle general covers (`v <= N` subsumes every stable sub) in
// and out while publishers fire events at full speed. The per-link
// subscribe-before-unsubscribe ordering must keep each neighbor's table a
// cover of everything reachable through it at every instant, so:
//
//   - no storm event may miss a stable subscription it matches, and none
//     may be delivered twice (no lost deliveries under churn);
//   - after the storm retracts its last cover, every stable subscription
//     must be promoted back and re-advertised — remote routing tables
//     return to exactly their pre-storm shape (exact promotion).
func TestCoveringChurnStorm(t *testing.T) {
	type hit struct {
		at int
		p  delivPair
	}
	var mu sync.Mutex
	counts := make(map[hit]int)
	sentinels := make(map[int]int) // publisher broker index → sentinels seen

	servers, shutdown, err := NewNetworkedLine(stormBrokers, Network, func(at int, d Delivery) {
		if d.SubID >= stormChurnBase && d.SubID < stormSentinelBase {
			return // a transient churn cover caught the event: not under test
		}
		mu.Lock()
		defer mu.Unlock()
		if d.SubID >= stormSentinelBase {
			sentinels[int(d.Msg.ID-stormSentinelBase)]++
			return
		}
		counts[hit{at: at, p: delivPair{sub: d.SubID, msg: d.Msg.ID}}]++
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	// Long-lived specifics: `v <= 10 and grp = "gJ_I"`. The distinct grp
	// pins keep them mutually non-covering, so with no covers alive each
	// one must appear in every remote table individually.
	for j, s := range servers {
		for i := 0; i < stormStable; i++ {
			sub, err := subscription.New(stormStableID(j, i), fmt.Sprintf("stable%d_%d", j, i),
				subscription.MustParse(fmt.Sprintf(`v <= 10 and grp = "g%d_%d"`, j, i)))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Subscribe(sub); err != nil {
				t.Fatal(err)
			}
		}
		sent, err := subscription.New(stormSentinelBase+uint64(j), fmt.Sprintf("flush%d", j),
			subscription.MustParse(fmt.Sprintf(`__flush%d exists`, j)))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Subscribe(sent); err != nil {
			t.Fatal(err)
		}
	}
	// The stable set must be fully propagated before the storm: an event
	// racing the initial subscribe replay could miss legitimately.
	waitControlDrain(t, servers)

	// The storm: per broker, one churner cycling covers and one publisher
	// firing events that each match exactly one stable subscription.
	var wg sync.WaitGroup
	for j := range servers {
		j := j
		wg.Add(2)
		go func() { // churner: subscribe cover k, retract cover k-1
			defer wg.Done()
			for k := 0; k < stormChurn; k++ {
				id := stormChurnBase + uint64(j*stormChurn+k)
				cover, err := subscription.New(id, fmt.Sprintf("churn%d", j),
					subscription.MustParse(fmt.Sprintf(`v <= %d`, 100+k)))
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := servers[j].Subscribe(cover); err != nil {
					t.Error(err)
					return
				}
				if k > 0 {
					if err := servers[j].Unsubscribe(id - 1); err != nil {
						t.Error(err)
						return
					}
				}
			}
			if err := servers[j].Unsubscribe(stormChurnBase + uint64(j*stormChurn+stormChurn-1)); err != nil {
				t.Error(err)
			}
		}()
		go func() { // publisher: event e hits stable sub (e%brokers, e%stable)
			defer wg.Done()
			for e := 0; e < stormEvents; e++ {
				id := uint64(j*stormEvents + e + 1)
				servers[j].Publish(event.Build(id).
					Int("v", int64(5)).
					Str("grp", fmt.Sprintf("g%d_%d", e%stormBrokers, e%stormStable)).
					Msg())
			}
		}()
	}
	wg.Wait()

	// Flush: per-link FIFO means a broker that has delivered publisher p's
	// sentinel has already delivered everything p published before it.
	for j, s := range servers {
		s.Publish(event.Build(stormSentinelBase+uint64(j)).
			Int("__flush0", 1).Int("__flush1", 1).Int("__flush2", 1).Msg())
	}
	waitForCond(t, 20*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		for j := 0; j < stormBrokers; j++ {
			if sentinels[j] != stormBrokers {
				return false
			}
		}
		return true
	})

	// No lost deliveries: every storm event reached its one stable match
	// at that subscription's home broker, exactly once.
	mu.Lock()
	for j := 0; j < stormBrokers; j++ {
		for e := 0; e < stormEvents; e++ {
			home := e % stormBrokers
			want := hit{at: home, p: delivPair{
				sub: stormStableID(home, e%stormStable),
				msg: uint64(j*stormEvents + e + 1),
			}}
			switch n := counts[want]; {
			case n == 0:
				t.Errorf("lost delivery: event %d from broker %d never reached sub %d at broker %d",
					want.p.msg, j, want.p.sub, home)
			case n > 1:
				t.Errorf("duplicate delivery: event %d reached sub %d %d times", want.p.msg, want.p.sub, n)
			}
			delete(counts, want)
		}
	}
	for h, n := range counts {
		t.Errorf("unexpected delivery: sub %d got event %d at broker %d (%d times)", h.p.sub, h.p.msg, h.at, n)
	}
	mu.Unlock()

	// Exact promotion: with every cover retracted, each broker's remote
	// table holds precisely the other brokers' stable subs and sentinels —
	// nothing still suppressed, nothing left over.
	waitControlDrain(t, servers)
	wantRemote := (stormBrokers - 1) * (stormStable + 1)
	for j, s := range servers {
		if got := s.Stats().RemoteSubs; got != wantRemote {
			t.Errorf("broker %d holds %d remote entries after the storm, want %d (exact promotion)",
				j, got, wantRemote)
		}
	}
}

// TestCoveringCollapsesControlPlane is the acceptance run from the paper's
// framing of covering vs pruning (§2.3): at 20k ticker subscriptions on a
// 3-broker line, the covering forest must cut both forwarded subscription
// frames and remote routing-table entries ≥5x, while sensornet — whose
// alert trees are disjunctive and therefore opaque to covering — must pass
// through within 5% of the covering-off baseline.
func TestCoveringCollapsesControlPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("20k-subscription overlay builds are slow; skipping under -short")
	}
	const brokers, subs, seed = 3, 20000, 7

	type control struct {
		frames uint64 // forwarded subscribe/unsubscribe transmissions
		bytes  uint64
		remote int // remote routing-table entries, summed over brokers
	}
	measure := func(name string, covering bool) control {
		t.Helper()
		var opts []OverlayOption
		if !covering {
			opts = append(opts, WithoutCovering())
		}
		net, err := NewLineOverlay(brokers, Network, opts...)
		if err != nil {
			t.Fatal(err)
		}
		gen, err := workload.New(name, seed)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < subs; i++ {
			s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i+1))
			if err != nil {
				t.Fatal(err)
			}
			if err := net.SubscribeAt(i%brokers, s); err != nil {
				t.Fatal(err)
			}
		}
		var c control
		for j := 0; j < brokers; j++ {
			c.remote += net.Broker(j).Stats().RemoteSubs
		}
		tr := net.Traffic()
		c.frames = tr.ControlFrames
		c.bytes = tr.ControlBytes
		return c
	}

	t.Run("ticker", func(t *testing.T) {
		on := measure("ticker", true)
		off := measure("ticker", false)
		t.Logf("ticker %d subs: covering on %d frames / %d bytes / %d remote entries; off %d / %d / %d (%.1fx frames, %.1fx entries)",
			subs, on.frames, on.bytes, on.remote, off.frames, off.bytes, off.remote,
			float64(off.frames)/float64(on.frames), float64(off.remote)/float64(on.remote))
		if on.frames*5 > off.frames {
			t.Errorf("covering cut ticker control frames only %.2fx (on=%d off=%d), want ≥5x",
				float64(off.frames)/float64(on.frames), on.frames, off.frames)
		}
		if on.remote*5 > off.remote {
			t.Errorf("covering cut ticker remote entries only %.2fx (on=%d off=%d), want ≥5x",
				float64(off.remote)/float64(on.remote), on.remote, off.remote)
		}
	})

	t.Run("sensornet", func(t *testing.T) {
		on := measure("sensornet", true)
		off := measure("sensornet", false)
		t.Logf("sensornet %d subs: covering on %d frames / %d remote entries; off %d / %d",
			subs, on.frames, on.remote, off.frames, off.remote)
		// Opaque passthrough: covering may only suppress, never add, and on
		// the covering-hostile workload it should suppress almost nothing.
		if on.frames > off.frames {
			t.Errorf("covering inflated sensornet control frames: on=%d off=%d", on.frames, off.frames)
		}
		if on.frames*100 < off.frames*95 {
			t.Errorf("sensornet control frames with covering on = %d, want within 5%% of off (%d): "+
				"opaque shapes must pass through unchanged", on.frames, off.frames)
		}
	})
}
