package dimprune

// One benchmark per figure of the paper's evaluation (Fig 1(a)–(f)), plus
// the ablation benches DESIGN.md calls out. Each figure bench runs a full
// sweep at a reduced scale per iteration and reports the headline numbers
// of the paper's §4.2 discussion as custom metrics (suffix identifies the
// heuristic and the pruning ratio, e.g. "sel@0.5"). cmd/prunesim runs the
// same sweeps at paper scale; EXPERIMENTS.md records the comparison.

import (
	"fmt"
	"testing"

	"dimprune/internal/auction"
	"dimprune/internal/core"
	"dimprune/internal/covering"
	"dimprune/internal/experiment"
	"dimprune/internal/filter"
	"dimprune/internal/subscription"
)

// benchCentralCfg is the shared figure-bench scale for the centralized
// setting: large enough that curve shapes are stable, small enough for
// go test -bench=. to finish on a laptop.
func benchCentralCfg() experiment.Config {
	cfg := experiment.DefaultConfig()
	cfg.Subs = 3000
	cfg.Events = 1200
	cfg.TrainEvents = 2500
	cfg.Checkpoints = 5
	return cfg
}

func benchDistributedCfg() experiment.Config {
	cfg := benchCentralCfg()
	cfg.Subs = 1200
	cfg.Events = 500
	return cfg
}

// reportSweeps emits metric(point) for every sweep at ratio 0, 0.5 and 1.
func reportSweeps(b *testing.B, sweeps []experiment.Sweep, unit string, metric func(experiment.Point) float64) {
	b.Helper()
	for _, sweep := range sweeps {
		pts := sweep.Points
		for _, idx := range []int{0, len(pts) / 2, len(pts) - 1} {
			p := pts[idx]
			b.ReportMetric(metric(p), fmt.Sprintf("%s_%s@%.1f", unit, sweep.Dimension, p.Ratio))
		}
	}
}

// BenchmarkFig1aTimeCentralized regenerates Fig 1(a): average filtering
// time per event in a single broker across the pruning sweep.
func BenchmarkFig1aTimeCentralized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCentralized(benchCentralCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweeps(b, res.Sweeps, "us", func(p experiment.Point) float64 {
				return float64(p.FilterTimePerEvent.Microseconds())
			})
		}
	}
}

// BenchmarkFig1bExpectedNetworkLoad regenerates Fig 1(b): the share of
// events a routing entry matches (expected forwarding volume).
func BenchmarkFig1bExpectedNetworkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCentralized(benchCentralCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweeps(b, res.Sweeps, "match", func(p experiment.Point) float64 {
				return p.MatchFraction
			})
		}
	}
}

// BenchmarkFig1cMemoryCentralized regenerates Fig 1(c): proportional
// reduction in predicate/subscription associations, all entries.
func BenchmarkFig1cMemoryCentralized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunCentralized(benchCentralCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweeps(b, res.Sweeps, "red", func(p experiment.Point) float64 {
				return p.AssocReduction
			})
		}
	}
}

// BenchmarkFig1dTimeDistributed regenerates Fig 1(d): aggregate filtering
// time per published event across the five-broker line.
func BenchmarkFig1dTimeDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDistributed(benchDistributedCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweeps(b, res.Sweeps, "us", func(p experiment.Point) float64 {
				return float64(p.FilterTimePerEvent.Microseconds())
			})
		}
	}
}

// BenchmarkFig1eActualNetworkLoad regenerates Fig 1(e): proportional
// increase in publish-frame transmissions over unoptimized routing.
func BenchmarkFig1eActualNetworkLoad(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDistributed(benchDistributedCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweeps(b, res.Sweeps, "incr", func(p experiment.Point) float64 {
				return p.NetworkIncrease
			})
		}
	}
}

// BenchmarkFig1fMemoryDistributed regenerates Fig 1(f): association
// reduction over non-local routing entries.
func BenchmarkFig1fMemoryDistributed(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiment.RunDistributed(benchDistributedCfg())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			reportSweeps(b, res.Sweeps, "red", func(p experiment.Point) float64 {
				return p.NonLocalAssocReduction
			})
		}
	}
}

// BenchmarkAblationInnermost toggles the §3.2 innermost restriction for
// memory-based pruning: without it, memory pruning cuts whole subtrees and
// the match fraction explodes much earlier.
func BenchmarkAblationInnermost(b *testing.B) {
	for _, mode := range []struct {
		name string
		opt  *bool
	}{{"on", core.InnermostOn}, {"off", core.InnermostOff}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := benchCentralCfg()
			cfg.Dimensions = []core.Dimension{core.DimMemory}
			cfg.PruneOptions.Innermost = mode.opt
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCentralized(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					pts := res.Sweeps[0].Points
					early, mid := pts[1], pts[len(pts)/2]
					b.ReportMetric(early.MatchFraction, "match@0.25")
					b.ReportMetric(early.AssocReduction, "red@0.25")
					b.ReportMetric(mid.MatchFraction, "match@0.5")
					b.ReportMetric(mid.AssocReduction, "red@0.5")
				}
			}
		})
	}
}

// BenchmarkAblationTieBreak disables the secondary/tertiary dimension
// orders of §3.4 for network-based pruning.
func BenchmarkAblationTieBreak(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := benchCentralCfg()
			cfg.Dimensions = []core.Dimension{core.DimNetwork}
			cfg.PruneOptions.DisableTieBreak = mode.disable
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCentralized(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					mid := res.Sweeps[0].Points[len(res.Sweeps[0].Points)/2]
					b.ReportMetric(mid.MatchFraction, "match@0.5")
					b.ReportMetric(float64(mid.FilterTimePerEvent.Microseconds()), "us@0.5")
				}
			}
		})
	}
}

// BenchmarkAblationEstimator compares the paper's three-component Δ≈sel
// against an average-only estimate for network-based pruning.
func BenchmarkAblationEstimator(b *testing.B) {
	for _, mode := range []struct {
		name    string
		avgOnly bool
	}{{"threeComponent", false}, {"avgOnly", true}} {
		b.Run(mode.name, func(b *testing.B) {
			cfg := benchCentralCfg()
			cfg.Dimensions = []core.Dimension{core.DimNetwork}
			cfg.PruneOptions.AvgOnlySelectivity = mode.avgOnly
			for i := 0; i < b.N; i++ {
				res, err := experiment.RunCentralized(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if i == b.N-1 {
					pts := res.Sweeps[0].Points
					b.ReportMetric(pts[len(pts)/2].MatchFraction, "match@0.5")
					b.ReportMetric(pts[len(pts)-2].MatchFraction, "match@0.75")
				}
			}
		})
	}
}

// BenchmarkCoveringVsPruning compares the covering baseline (§2.3) against
// pruning on the same population: covering can only drop whole entries that
// happen to be conjunctive and covered; pruning shrinks every entry.
func BenchmarkCoveringVsPruning(b *testing.B) {
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	subs := make([]*subscription.Subscription, 0, 2000)
	for i := 0; len(subs) < cap(subs); i++ {
		s, err := gen.Subscription(uint64(i+1), "c")
		if err != nil {
			b.Fatal(err)
		}
		subs = append(subs, s)
	}

	b.Run("covering", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix := covering.NewIndex()
			for _, s := range subs {
				ix.Insert(s)
			}
			forward := ix.Forwardable()
			if i == b.N-1 {
				b.ReportMetric(1-float64(len(forward))/float64(len(subs)), "entriesDropped")
			}
		}
	})

	b.Run("pruning", func(b *testing.B) {
		cfg := benchCentralCfg()
		cfg.Subs = len(subs)
		cfg.Dimensions = []core.Dimension{core.DimNetwork}
		cfg.Checkpoints = 3
		for i := 0; i < b.N; i++ {
			res, err := experiment.RunCentralized(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if i == b.N-1 {
				mid := res.Sweeps[0].Points[1] // ratio 0.5
				b.ReportMetric(mid.AssocReduction, "assocReduction@0.5")
				b.ReportMetric(mid.MatchFraction, "match@0.5")
			}
		}
	})

	// Keep the filter engine honest about the covering comparison: the
	// covered set must deliver identical matches through the cover's
	// generality (sanity assertion, not a metric).
	b.Run("soundness", func(b *testing.B) {
		ix := covering.NewIndex()
		eng := filter.New()
		for _, s := range subs[:500] {
			ix.Insert(s)
			if err := eng.Register(s); err != nil {
				b.Fatal(err)
			}
		}
		events := gen.Events(50000, 256)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := events[i%len(events)]
			eng.MatchVisit(m, func(s *subscription.Subscription) {
				if by, covered := ix.CoveredBy(s.ID); covered {
					if cur, _, ok3 := lookup(subs, by); ok3 && !cur.Matches(m) {
						b.Fatalf("cover %d does not match event its covered %d matches", by, s.ID)
					}
				}
			})
		}
	})
}

func lookup(subs []*subscription.Subscription, id uint64) (*subscription.Subscription, int, bool) {
	for i, s := range subs {
		if s.ID == id {
			return s, i, true
		}
	}
	return nil, 0, false
}
