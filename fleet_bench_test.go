package dimprune

// Horizontal-scaling benchmarks for the fleet plane (BENCH_10.json, re-
// measured by the CI fleet job). One publishing goroutine drives a
// coordinator over 1, 2, or 4 in-process shards loaded with each
// registered workload: events/sec at shards=4 versus shards=1 is the
// acceptance ratio. The recorded local point comes from a 1-CPU container
// where shard parallelism cannot show wall-clock gains — the CI
// GOMAXPROCS matrix is the multi-core venue, same as BENCH_5's worker
// sweep.

import (
	"fmt"
	"testing"

	"dimprune/internal/broker"
	"dimprune/internal/event"
	"dimprune/internal/fleet"
	"dimprune/internal/workload"
)

// benchFleet builds a coordinator over n shards loaded with nSubs
// subscriptions of the named workload, plus a pre-generated event stream.
func benchFleet(b *testing.B, wl string, shards, nSubs, nEvents int) (*fleet.Coordinator, []*event.Message) {
	b.Helper()
	c := fleet.NewCoordinator()
	b.Cleanup(func() { _ = c.Close() })
	for i := 0; i < shards; i++ {
		sh, err := fleet.NewLocalShard(fmt.Sprintf("shard%d", i), broker.Config{})
		if err != nil {
			b.Fatal(err)
		}
		if err := c.AddShard(sh); err != nil {
			b.Fatal(err)
		}
	}
	gen, err := workload.New(wl, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nSubs; i++ {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if err := c.Subscribe(s); err != nil {
			b.Fatal(err)
		}
	}
	return c, gen.Events(1, nEvents)
}

// BenchmarkFleetPublish sweeps the fleet size for every registered
// workload with a single hot publisher — the scatter/gather scaling curve.
func BenchmarkFleetPublish(b *testing.B) {
	const nSubs = 20000
	for _, wl := range workload.Names() {
		for _, shards := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("workload=%s/shards=%d", wl, shards), func(b *testing.B) {
				c, events := benchFleet(b, wl, shards, nSubs, 4096)
				delivered := uint64(0)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					dels, err := c.Publish(events[i%len(events)])
					if err != nil {
						b.Fatal(err)
					}
					delivered += uint64(len(dels))
				}
				b.StopTimer()
				if delivered == 0 {
					b.Fatal("benchmark workload matched nothing")
				}
			})
		}
	}
}
