package dimprune

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// --- Delivery-plane bugfix regressions -------------------------------------

// TestCallbackDeliveredCountsInvocations is the regression test for the
// callback-mode Delivered() overcount: the meter used to count at enqueue
// time, so backlog that Unsubscribe discarded — callbacks that never ran —
// inflated the figure. Delivered must equal completed callback
// invocations.
func TestCallbackDeliveredCountsInvocations(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	gate := make(chan struct{})
	entered := make(chan struct{}, 8)
	h, err := ps.SubscribeExpr(`x >= 0`, WithCallback(func(Notification) {
		entered <- struct{}{}
		<-gate
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := ps.Publish(NewEvent(uint64(i + 1)).Int("x", int64(i)).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	<-entered // first callback is in flight, four more are queued
	unsubDone := make(chan error)
	go func() { unsubDone <- h.Unsubscribe() }()
	// Let Unsubscribe set discard while the first callback still blocks.
	time.Sleep(10 * time.Millisecond)
	close(gate)
	if err := <-unsubDone; err != nil {
		t.Fatalf("Unsubscribe: %v", err)
	}
	// Only the in-flight invocation completed; the discarded backlog was
	// never delivered to anyone. Pre-fix this reported 5.
	if got := h.Delivered(); got != 1 {
		t.Fatalf("Delivered = %d after discard, want 1 (completed invocations only)", got)
	}
}

// TestLegacyPolicyReportsSynchronous is the regression test for legacy
// Handle.Policy(): subscriptions made through the deprecated OnNotify API
// have no queue and deliver synchronously, but used to report Block —
// misleading anything that keys on policy, e.g. brokerd's stats tick.
func TestLegacyPolicyReportsSynchronous(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer ps.Close()
	id, err := ps.SubscribeText("legacy", `x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	ps.mu.RLock()
	h := ps.subs[id]
	ps.mu.RUnlock()
	if h == nil {
		t.Fatal("legacy subscription has no handle")
	}
	if got := h.Policy(); got != Synchronous {
		t.Fatalf("legacy Policy() = %v, want Synchronous", got)
	}
	// The modern modes are unaffected.
	ch, err := ps.SubscribeExpr(`x = 1`, WithPolicy(DropOldest))
	if err != nil {
		t.Fatal(err)
	}
	if ch.Policy() != DropOldest {
		t.Fatalf("channel Policy() = %v, want DropOldest", ch.Policy())
	}
}

// --- Durable subscription surface ------------------------------------------

func newDurableEngine(t *testing.T, dir string) *Embedded {
	t.Helper()
	ps, err := NewEmbedded(EmbeddedConfig{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return ps
}

func TestDurableOptionValidation(t *testing.T) {
	noWAL, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer noWAL.Close()
	if _, err := noWAL.SubscribeExpr(`x = 1`, WithDurable("d")); err == nil || !strings.Contains(err.Error(), "WALDir") {
		t.Fatalf("durable without WAL: err = %v", err)
	}

	ps := newDurableEngine(t, t.TempDir())
	defer ps.Close()
	if _, err := ps.SubscribeExpr(`x = 1`, WithPolicy(Persist)); err == nil {
		t.Fatal("Persist without WithDurable accepted")
	}
	if _, err := ps.SubscribeExpr(`x = 1`, WithManualAck()); err == nil {
		t.Fatal("WithManualAck without WithDurable accepted")
	}
	if _, err := ps.SubscribeExpr(`x = 1`, WithDurable("d"), WithPolicy(DropOldest)); err == nil {
		t.Fatal("durable with a drop policy accepted")
	}
	h, err := ps.SubscribeExpr(`x = 1`, WithDurable("d"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Policy() != Persist || h.Durable() != "d" {
		t.Fatalf("durable handle: policy=%v durable=%q", h.Policy(), h.Durable())
	}
	if _, err := ps.SubscribeExpr(`x = 1`, WithDurable("d")); err == nil {
		t.Fatal("second live handle on the same durable name accepted")
	}
	// Ephemeral handles reject Ack.
	eph, err := ps.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := eph.Ack(1); err == nil {
		t.Fatal("Ack on ephemeral handle accepted")
	}
}

// TestDurableChannelReplayAcrossRestart is the core durable contract on
// the embedded engine: unacked notifications redeliver after a restart of
// the same WAL directory, acked ones do not, and non-matching events never
// surface.
func TestDurableChannelReplayAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	ps := newDurableEngine(t, dir)
	h, err := ps.SubscribeExpr(`kind = "hit"`, WithDurable("replay"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 6; i++ {
		kind := "hit"
		if i%3 == 0 {
			kind = "miss" // logged, but must never reach the durable
		}
		if _, err := ps.Publish(NewEvent(uint64(i)).Str("kind", kind).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	// Receive all four hits, ack through the second.
	var seqs []uint64
	for i := 0; i < 4; i++ {
		select {
		case n := <-h.C():
			if n.Seq == 0 {
				t.Fatalf("durable notification without Seq: %+v", n)
			}
			if v, _ := n.Msg.Get("kind"); v.String() != `"hit"` {
				t.Fatalf("non-matching event delivered: %+v", n.Msg)
			}
			seqs = append(seqs, n.Seq)
		case <-time.After(2 * time.Second):
			t.Fatalf("hit %d not delivered", i+1)
		}
	}
	if err := h.Ack(seqs[1]); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: hits 3 and 4 were delivered but not acked — they replay.
	ps2 := newDurableEngine(t, dir)
	defer ps2.Close()
	h2, err := ps2.SubscribeExpr(`kind = "hit"`, WithDurable("replay"))
	if err != nil {
		t.Fatal(err)
	}
	var ids []uint64
	for i := 0; i < 2; i++ {
		select {
		case n := <-h2.C():
			ids = append(ids, n.Msg.ID)
			if err := h2.Ack(n.Seq); err != nil {
				t.Fatal(err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("replayed hit %d not delivered (got %v)", i+1, ids)
		}
	}
	if ids[0] != 4 || ids[1] != 5 {
		t.Fatalf("replayed IDs = %v, want [4 5] (events 1,2 acked; 3 was a miss)", ids)
	}
	select {
	case n := <-h2.C():
		t.Fatalf("unexpected extra delivery: %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDurableCallbackAutoAck: callback mode acks as each callback returns,
// so a clean restart redelivers nothing.
func TestDurableCallbackAutoAck(t *testing.T) {
	dir := t.TempDir()
	ps := newDurableEngine(t, dir)
	var delivered atomic.Uint64
	done := make(chan struct{}, 16)
	h, err := ps.SubscribeExpr(`x >= 0`, WithDurable("auto"), WithCallback(func(n Notification) {
		delivered.Add(1)
		done <- struct{}{}
	}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := ps.Publish(NewEvent(uint64(i)).Int("x", int64(i)).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(2 * time.Second):
			t.Fatalf("callback %d never ran", i+1)
		}
	}
	if h.Delivered() != 3 {
		t.Fatalf("Delivered = %d, want 3", h.Delivered())
	}
	ps.Close()

	ps2 := newDurableEngine(t, dir)
	defer ps2.Close()
	redelivered := make(chan Notification, 16)
	if _, err := ps2.SubscribeExpr(`x >= 0`, WithDurable("auto"), WithCallback(func(n Notification) {
		redelivered <- n
	})); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-redelivered:
		t.Fatalf("auto-acked notification replayed: %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
}

// TestDurableUnsubscribeForgets: Unsubscribe ends the durable itself — a
// later subscribe under the same name starts fresh at the tail instead of
// replaying.
func TestDurableUnsubscribeForgets(t *testing.T) {
	dir := t.TempDir()
	ps := newDurableEngine(t, dir)
	defer ps.Close()
	h, err := ps.SubscribeExpr(`x >= 0`, WithDurable("gone"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.Publish(NewEvent(1).Int("x", 1).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-h.C():
	case <-time.After(2 * time.Second):
		t.Fatal("no delivery before unsubscribe")
	}
	if err := h.Unsubscribe(); err != nil {
		t.Fatal(err)
	}
	h2, err := ps.SubscribeExpr(`x >= 0`, WithDurable("gone"))
	if err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-h2.C():
		t.Fatalf("forgotten durable replayed %+v", n)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := ps.Publish(NewEvent(2).Int("x", 2).Msg()); err != nil {
		t.Fatal(err)
	}
	select {
	case n := <-h2.C():
		if n.Msg.ID != 2 {
			t.Fatalf("fresh durable got ID %d, want 2", n.Msg.ID)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fresh durable got nothing")
	}
}
