package dimprune_test

import (
	"fmt"
	"sort"

	"dimprune"
)

// ExampleEmbedded shows the embedded engine end to end: subscribe, publish,
// prune, and observe that matching only ever widens.
func ExampleEmbedded() {
	ps, err := dimprune.NewEmbedded(dimprune.EmbeddedConfig{Dimension: dimprune.Network})
	if err != nil {
		fmt.Println(err)
		return
	}
	ps.OnNotify(func(n dimprune.Notification) {
		fmt.Printf("%s <- event %d\n", n.Subscriber, n.Msg.ID)
	})
	if _, err := ps.SubscribeText("alice", `category = "scifi" and price <= 25`); err != nil {
		fmt.Println(err)
		return
	}
	ps.Publish(dimprune.NewEvent(1).Str("category", "scifi").Num("price", 19).Msg())
	ps.Publish(dimprune.NewEvent(2).Str("category", "scifi").Num("price", 99).Msg())

	// Output:
	// alice <- event 1
}

// ExampleParse demonstrates the text subscription syntax and its canonical
// rendering.
func ExampleParse() {
	n, err := dimprune.Parse(`not (price > 25 or category != "scifi") and author exists`)
	if err != nil {
		fmt.Println(err)
		return
	}
	// Negation is pushed into the predicates (negation normal form) and
	// nested conjunctions flatten into canonical form.
	fmt.Println(n)
	// Output:
	// not price > 25 and not category != "scifi" and author exists
}

// ExampleAnd builds the same subscription with combinators instead of text.
func ExampleAnd() {
	tree := dimprune.And(
		dimprune.Or(
			dimprune.Eq("author", dimprune.Str("Herbert")),
			dimprune.Eq("author", dimprune.Str("Asimov")),
		),
		dimprune.Le("price", dimprune.Int(25)),
	)
	sub, err := dimprune.NewSubscription(1, "alice", tree)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(sub)
	fmt.Println("pmin:", sub.PMin())
	// Output:
	// (author = "Herbert" or author = "Asimov") and price <= 25
	// pmin: 2
}

// ExampleNewLineOverlay routes an event across the paper's five-broker line
// and shows the selective-routing hop count.
func ExampleNewLineOverlay() {
	net, err := dimprune.NewLineOverlay(5, dimprune.Network)
	if err != nil {
		fmt.Println(err)
		return
	}
	sub, _ := dimprune.NewSubscription(1, "eve", dimprune.MustParse(`x = 1`))
	if err := net.SubscribeAt(4, sub); err != nil {
		fmt.Println(err)
		return
	}
	net.ResetTraffic()
	dels, err := net.PublishAt(0, dimprune.NewEvent(7).Int("x", 1).Msg())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("delivered to broker %d subscriber %s\n", dels[0].Broker, dels[0].Subscriber)
	fmt.Printf("event transmissions: %d\n", net.Traffic().PublishFrames)
	// Output:
	// delivered to broker 4 subscriber eve
	// event transmissions: 4
}

// ExampleEmbedded_prune shows pruning trading exactness for table size.
func ExampleEmbedded_prune() {
	ps, _ := dimprune.NewEmbedded(dimprune.EmbeddedConfig{Dimension: dimprune.Memory})
	ps.SubscribeText("bob", `a = 1 and b = 2 and c = 3`)
	before := ps.Stats().Associations
	pruned := ps.Prune(2)
	after := ps.Stats().Associations
	fmt.Printf("pruned %d steps: %d -> %d associations\n", pruned, before, after)

	n, _ := ps.Publish(dimprune.NewEvent(1).Int("c", 3).Msg())
	fmt.Printf("generalized entry matches partial event: %v\n", n == 1)
	// Output:
	// pruned 2 steps: 3 -> 1 associations
	// generalized entry matches partial event: true
}

// ExampleWorkload samples the paper's auction workload deterministically.
func ExampleWorkload() {
	w, err := dimprune.NewWorkload(dimprune.DefaultWorkloadConfig())
	if err != nil {
		fmt.Println(err)
		return
	}
	m := w.Event(1)
	var names []string
	for _, a := range m.Attrs {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Println(names)
	// Output:
	// [author bids category condition discount format hours_left price rating signed title]
}
