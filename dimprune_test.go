package dimprune

import (
	"sync"
	"testing"
)

func TestEmbeddedSubscribePublish(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var got []Notification
	ps.OnNotify(func(n Notification) { got = append(got, n) })

	id, err := ps.SubscribeText("alice", `category = "scifi" and price <= 25`)
	if err != nil {
		t.Fatal(err)
	}
	if id == 0 {
		t.Error("zero subscription ID")
	}
	if _, err := ps.SubscribeText("bob", `category = "crime"`); err != nil {
		t.Fatal(err)
	}

	n, err := ps.Publish(NewEvent(1).Str("category", "scifi").Num("price", 19.5).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || len(got) != 1 || got[0].Subscriber != "alice" || got[0].SubID != id {
		t.Fatalf("publish matched %d, notifications %+v", n, got)
	}

	n, err = ps.Publish(NewEvent(2).Str("category", "poetry").Msg())
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 || len(got) != 1 {
		t.Errorf("non-matching event delivered: %d, %+v", n, got)
	}
}

func TestEmbeddedSubscribeErrors(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ps.SubscribeText("a", `price <=`); err == nil {
		t.Error("bad expression accepted")
	}
	if _, err := ps.Subscribe("a", nil); err == nil {
		t.Error("nil tree accepted")
	}
	if _, err := ps.Publish(nil); err == nil {
		t.Error("nil message accepted")
	}
	if err := ps.Unsubscribe(999); err == nil {
		t.Error("unknown unsubscribe accepted")
	}
}

func TestEmbeddedPruneOverDeliversOnly(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{Dimension: Network})
	if err != nil {
		t.Fatal(err)
	}
	// Teach the model the price distribution so pruning order is informed.
	for i := 0; i < 500; i++ {
		if _, err := ps.Publish(NewEvent(uint64(i)).Str("category", "x").Num("price", float64(i%100)).Msg()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ps.SubscribeText("alice", `category = "scifi" and price <= 95`); err != nil {
		t.Fatal(err)
	}

	match := NewEvent(1000).Str("category", "scifi").Num("price", 50).Msg()
	tooDear := NewEvent(1001).Str("category", "scifi").Num("price", 99).Msg()

	n, _ := ps.Publish(match)
	if n != 1 {
		t.Fatalf("pre-prune match count %d", n)
	}
	n, _ = ps.Publish(tooDear)
	if n != 0 {
		t.Fatalf("pre-prune overmatch %d", n)
	}

	if pruned := ps.Prune(1); pruned != 1 {
		t.Fatalf("Prune = %d, want 1", pruned)
	}
	// Still matches everything it matched before…
	if n, _ = ps.Publish(match); n != 1 {
		t.Error("pruning lost a match")
	}
	// …and the generalized entry may now over-deliver.
	if n, _ = ps.Publish(tooDear); n != 1 {
		t.Error("expected generalized entry to match the broader event")
	}
	st := ps.Stats()
	if st.PruningsDone != 1 {
		t.Errorf("PruningsDone = %d", st.PruningsDone)
	}
}

func TestEmbeddedSetDimension(t *testing.T) {
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ps.SetDimension(Memory); err != nil {
		t.Fatal(err)
	}
	if err := ps.SetDimension(Dimension(77)); err == nil {
		t.Error("bad dimension accepted")
	}
}

func TestBuildersProduceSameAsParse(t *testing.T) {
	built := And(
		Or(Eq("author", Str("A")), Eq("author", Str("B"))),
		Le("price", Int(25)),
		Not(Eq("seller", Str("scalper"))),
	).Simplify()
	parsed := MustParse(`(author = "A" or author = "B") and price <= 25 and not seller = "scalper"`)
	if !built.Equal(parsed) {
		t.Errorf("builder %s != parsed %s", built, parsed)
	}
}

func TestNewLineOverlayEndToEnd(t *testing.T) {
	net, err := NewLineOverlay(3, Network)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewLineOverlay(1, Network); err == nil {
		t.Error("single-broker line accepted")
	}
	sub, err := NewSubscription(1, "eve", MustParse(`x = 1`))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SubscribeAt(2, sub); err != nil {
		t.Fatal(err)
	}
	dels, err := net.PublishAt(0, NewEvent(1).Int("x", 1).Msg())
	if err != nil {
		t.Fatal(err)
	}
	if len(dels) != 1 || dels[0].Broker != 2 {
		t.Fatalf("deliveries = %+v", dels)
	}
	if net.Traffic().PublishFrames != 2 {
		t.Errorf("frames = %d, want 2", net.Traffic().PublishFrames)
	}
}

func TestWorkloadFacade(t *testing.T) {
	w, err := NewWorkload(DefaultWorkloadConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := w.Event(1)
	if !m.Has("title") || !m.Has("discount") {
		t.Errorf("workload event incomplete: %s", m)
	}
	s, err := w.OfClass(TitleWatcher, 1, "c")
	if err != nil {
		t.Fatal(err)
	}
	if s.NumLeaves() < 2 {
		t.Errorf("watcher too small: %s", s)
	}
}

func TestExperimentFacadeSmoke(t *testing.T) {
	cfg := DefaultExperimentConfig()
	cfg.Subs = 200
	cfg.Events = 100
	cfg.TrainEvents = 200
	cfg.Checkpoints = 3
	cfg.Dimensions = []Dimension{Network}
	res, err := RunCentralized(cfg)
	if err != nil {
		t.Fatal(err)
	}
	figs := Figures(res)
	if len(figs) != 3 {
		t.Fatalf("%d figures", len(figs))
	}
	if RenderTable(figs[0]) == "" || RenderCSV(figs[0]) == "" {
		t.Error("rendering empty")
	}
}

func TestServerFacadeOverPipe(t *testing.T) {
	b1, err := NewBroker(BrokerConfig{ID: "b1"})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := NewBroker(BrokerConfig{ID: "b2"})
	if err != nil {
		t.Fatal(err)
	}
	dels := make(chan Delivery, 1)
	s1 := NewServer(b1, nil)
	s2 := NewServer(b2, func(d Delivery) { dels <- d })
	defer s1.Shutdown()
	defer s2.Shutdown()
	c1, c2 := Pipe()
	if _, err := s1.AttachLink(c1); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.AttachLink(c2); err != nil {
		t.Fatal(err)
	}
	sub, _ := NewSubscription(1, "eve", MustParse(`x = 1`))
	if _, err := s2.Subscribe(sub); err != nil {
		t.Fatal(err)
	}
	for s1.Stats().RemoteSubs == 0 {
	}
	s1.Publish(NewEvent(1).Int("x", 1).Msg())
	d := <-dels
	if d.Subscriber != "eve" {
		t.Errorf("delivery = %+v", d)
	}
}

func TestEmbeddedConcurrentUse(t *testing.T) {
	// Embedded claims safety for concurrent use; hammer it from multiple
	// goroutines under the race detector.
	ps, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ps.OnNotify(func(Notification) {})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, err := ps.SubscribeText("client", `price <= 50 and category = "x"`)
				if err != nil {
					errs <- err
					return
				}
				if _, err := ps.Publish(NewEvent(uint64(g*1000+i)).Num("price", 10).Str("category", "x").Msg()); err != nil {
					errs <- err
					return
				}
				if i%3 == 0 {
					ps.Prune(1)
				}
				if i%5 == 0 {
					if err := ps.Unsubscribe(id); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
