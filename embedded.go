package dimprune

import (
	"fmt"
	"sync"

	"dimprune/internal/broker"
	"dimprune/internal/selectivity"
)

// EmbeddedConfig configures an in-process pub/sub instance.
type EmbeddedConfig struct {
	// Dimension selects the pruning heuristic; default Network, the paper's
	// recommendation for general-purpose systems.
	Dimension Dimension
	// PruneOptions tunes the pruning engine.
	PruneOptions PruneOptions
	// LearnFromEvents updates the selectivity model with every published
	// event (default true), keeping Δ≈sel ratings current.
	DisableLearning bool
	// Shards partitions the matching engine's subscription table so one
	// match can fan out across workers. 0 keeps the serial single-shard
	// layout; a small multiple of MatchWorkers is a good setting.
	Shards int
	// MatchWorkers bounds the goroutines one Publish fans its matching out
	// across (capped at Shards). 0 or 1 matches on the publishing
	// goroutine. Independent of this setting, Publish may be called from
	// many goroutines at once and the calls run concurrently.
	MatchWorkers int
}

// Notification is one delivered event.
type Notification struct {
	Subscriber string
	SubID      uint64
	Msg        *Message
}

// Embedded is a single-process publish/subscribe engine with pruning —
// a one-broker deployment of the library for applications that want
// content-based dispatch with bounded routing-table growth.
//
// Unlike a routing broker, an Embedded instance treats every subscription
// as prunable: matching becomes approximate once Prune is called (supersets
// only), which is the intended trade — applications that need exact
// matching simply never prune. It is safe for concurrent use: publishes
// run concurrently with each other (and, with MatchWorkers set, each one
// fans out internally), while subscription changes and pruning serialize
// against the routing table inside the broker.
type Embedded struct {
	mu     sync.RWMutex // guards notify and nextID; the broker locks itself
	b      *broker.Broker
	notify func(Notification)
	nextID uint64
}

// NewEmbedded creates an embedded pub/sub instance.
func NewEmbedded(cfg EmbeddedConfig) (*Embedded, error) {
	b, err := broker.New(broker.Config{
		ID:            "embedded",
		Dimension:     cfg.Dimension,
		PruneOptions:  cfg.PruneOptions,
		ObserveEvents: !cfg.DisableLearning,
		MatchShards:   cfg.Shards,
		MatchWorkers:  cfg.MatchWorkers,
	})
	if err != nil {
		return nil, err
	}
	e := &Embedded{b: b}
	// A virtual neighbor link makes every subscription a non-local routing
	// entry, i.e. eligible for pruning; deliveries are synthesized from the
	// link's forwarding decision.
	e.b.AddLink()
	return e, nil
}

// OnNotify installs the delivery callback. It must be set before Publish;
// callbacks run synchronously on the publishing goroutine and may be
// invoked concurrently when publishers are concurrent.
func (e *Embedded) OnNotify(fn func(Notification)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notify = fn
}

// SubscribeText registers a subscription given in text syntax and returns
// its assigned ID.
func (e *Embedded) SubscribeText(subscriber, expr string) (uint64, error) {
	n, err := Parse(expr)
	if err != nil {
		return 0, err
	}
	return e.Subscribe(subscriber, n)
}

// Subscribe registers a subscription tree and returns its assigned ID.
func (e *Embedded) Subscribe(subscriber string, root *Node) (uint64, error) {
	e.mu.Lock()
	e.nextID++
	id := e.nextID
	e.mu.Unlock()
	s, err := NewSubscription(id, subscriber, root)
	if err != nil {
		return 0, err
	}
	// Registered via the virtual link so the entry is prunable.
	if _, err := e.b.HandleSubscribe(0, s); err != nil {
		return 0, err
	}
	return s.ID, nil
}

// Unsubscribe retracts a subscription.
func (e *Embedded) Unsubscribe(id uint64) error {
	_, err := e.b.HandleUnsubscribe(0, id)
	return err
}

// Publish matches an event against all subscriptions, invoking the
// notification callback per match, and returns the match count. Publishes
// run concurrently with each other.
func (e *Embedded) Publish(m *Message) (int, error) {
	if m == nil {
		return 0, fmt.Errorf("dimprune: nil message")
	}
	e.mu.RLock()
	notify := e.notify
	e.mu.RUnlock()
	matches := 0
	e.b.MatchEntries(m, func(subID uint64, subscriber string) {
		matches++
		if notify != nil {
			notify(Notification{Subscriber: subscriber, SubID: subID, Msg: m})
		}
	})
	return matches, nil
}

// PublishBatch publishes a burst of events in order, returning the total
// match count. The broker holds its shared routing lock once for the whole
// burst, which amortizes the handoff under bursty load.
func (e *Embedded) PublishBatch(ms []*Message) (int, error) {
	for _, m := range ms {
		if m == nil {
			return 0, fmt.Errorf("dimprune: nil message")
		}
	}
	e.mu.RLock()
	notify := e.notify
	e.mu.RUnlock()
	matches := 0
	e.b.MatchEntriesBatch(ms, func(i int, subID uint64, subscriber string) {
		matches++
		if notify != nil {
			notify(Notification{Subscriber: subscriber, SubID: subID, Msg: ms[i]})
		}
	})
	return matches, nil
}

// Prune applies up to n pruning steps and returns the number performed.
// After pruning, Publish may over-deliver (supersets), never under-deliver.
func (e *Embedded) Prune(n int) int {
	return e.b.Prune(n)
}

// Stats snapshots the engine.
func (e *Embedded) Stats() broker.Stats {
	return e.b.Stats()
}

// SetDimension switches the pruning heuristic at runtime.
func (e *Embedded) SetDimension(d Dimension) error {
	return e.b.SetDimension(d)
}

// Model exposes the selectivity model (e.g. to pre-train it).
func (e *Embedded) Model() *selectivity.Model {
	return e.b.Model()
}
