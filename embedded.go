package dimprune

import (
	"fmt"
	"sync"

	"dimprune/internal/broker"
	"dimprune/internal/selectivity"
	"dimprune/internal/wal"
)

// EmbeddedConfig configures an in-process pub/sub instance.
type EmbeddedConfig struct {
	// Dimension selects the pruning heuristic; default Network, the paper's
	// recommendation for general-purpose systems.
	Dimension Dimension
	// PruneOptions tunes the pruning engine.
	PruneOptions PruneOptions
	// LearnFromEvents updates the selectivity model with every published
	// event (default true), keeping Δ≈sel ratings current.
	DisableLearning bool
	// Shards partitions the matching engine's subscription table so one
	// match can fan out across workers. 0 auto-sizes from the worker
	// count (one shard when matching is serial, a small multiple of
	// MatchWorkers otherwise).
	Shards int
	// MatchWorkers bounds the goroutines one Publish fans its matching out
	// across (capped at Shards). 0 auto-sizes from GOMAXPROCS; 1 matches
	// on the publishing goroutine. Independent of this setting, Publish
	// may be called from many goroutines at once and the calls run
	// concurrently.
	MatchWorkers int
	// WALDir enables the durable plane: published events are logged to a
	// segmented write-ahead log in this directory whenever durable
	// subscriptions (WithDurable) are registered, and durable cursors
	// survive restarts of the same directory. Empty disables durability;
	// WithDurable then fails.
	WALDir string
	// WALSync fsyncs every WAL append. Off by default: the log already
	// survives process death, and fsync-per-event costs an order of
	// magnitude in publish throughput. Enable for machine-crash
	// durability.
	WALSync bool
	// WALSegmentBytes overrides the WAL segment rotation size (default
	// wal.DefaultSegmentBytes).
	WALSegmentBytes int64
}

// Notification is one delivered event.
type Notification struct {
	Subscriber string
	SubID      uint64
	Msg        *Message
	// Seq is the event's WAL sequence number on durable subscriptions
	// (pass it to Handle.Ack); zero on ephemeral ones.
	Seq uint64
}

// Embedded is a single-process publish/subscribe engine with pruning —
// a one-broker deployment of the library for applications that want
// content-based dispatch with bounded routing-table growth.
//
// Unlike a routing broker, an Embedded instance treats every subscription
// as prunable: matching becomes approximate once Prune is called (supersets
// only), which is the intended trade — applications that need exact
// matching simply never prune.
//
// Subscriptions are registered with SubscribeExpr/SubscribeTree and owned
// by the returned Handle, which carries the subscription's delivery queue,
// backpressure policy, and lifecycle (see Handle). The engine is safe for
// concurrent use: publishes run concurrently with each other (and, with
// MatchWorkers set, each one fans out internally), subscription changes
// and pruning serialize against the routing table inside the broker, and
// delivery decouples through per-subscription queues so one slow consumer
// never stalls the match path. Close retires the engine: queued
// notifications drain and further operations return ErrClosed.
type Embedded struct {
	// mu guards notify, nextID, subs, and closed; the broker locks itself.
	// It is never held across broker calls or queue operations.
	mu     sync.RWMutex
	b      *broker.Broker
	notify func(Notification)
	nextID uint64
	subs   map[uint64]*Handle
	closed bool

	// wal is the durable plane's event log, non-nil iff WALDir was set.
	// Its own mutex orders appends; the engine never holds mu across a
	// WAL call.
	wal *wal.Store

	// pubScratch pools per-publish buffers: match refs collected under the
	// broker's shared lock, then resolved handles, so concurrent publishes
	// neither share state nor allocate per event.
	pubScratch sync.Pool // *publishBuffers
}

// publishBuffers is the per-call scratch of one publish.
type publishBuffers struct {
	refs    []matchRef
	targets []*Handle
}

// matchRef is one match collected under the broker's routing lock.
type matchRef struct {
	batchIdx   int
	subID      uint64
	subscriber string
}

// NewEmbedded creates an embedded pub/sub instance.
func NewEmbedded(cfg EmbeddedConfig) (*Embedded, error) {
	b, err := broker.New(broker.Config{
		ID:            "embedded",
		Dimension:     cfg.Dimension,
		PruneOptions:  cfg.PruneOptions,
		ObserveEvents: !cfg.DisableLearning,
		MatchShards:   cfg.Shards,
		MatchWorkers:  cfg.MatchWorkers,
		// The covering plane decides what to advertise to peers; the
		// embedded engine has none, so skip the forest maintenance.
		DisableCovering: true,
	})
	if err != nil {
		return nil, err
	}
	e := &Embedded{b: b, subs: make(map[uint64]*Handle)}
	if cfg.WALDir != "" {
		w, err := wal.Open(wal.Options{Dir: cfg.WALDir, SegmentBytes: cfg.WALSegmentBytes, Sync: cfg.WALSync})
		if err != nil {
			return nil, err
		}
		e.wal = w
	}
	// A virtual neighbor link makes every subscription a non-local routing
	// entry, i.e. eligible for pruning; deliveries are synthesized from the
	// link's forwarding decision.
	e.b.AddLink()
	return e, nil
}

// SubscribeExpr registers a subscription given in text syntax and returns
// its Handle. By default notifications arrive on the handle's channel
// (Handle.C) with a DefaultBuffer-deep queue and the Block policy; see
// WithCallback, WithBuffer, and WithPolicy.
func (e *Embedded) SubscribeExpr(expr string, opts ...SubOption) (*Handle, error) {
	root, err := Parse(expr)
	if err != nil {
		return nil, err
	}
	return e.SubscribeTree(root, opts...)
}

// SubscribeTree registers a subscription tree and returns its Handle; see
// SubscribeExpr.
func (e *Embedded) SubscribeTree(root *Node, opts ...SubOption) (*Handle, error) {
	o := defaultSubOptions()
	for _, opt := range opts {
		opt(&o)
	}
	return e.register(root, o, false)
}

// register creates the handle, installs the subscription in the broker's
// routing table, and only then makes the handle discoverable to
// publishers — so a publisher that finds a handle always finds it fully
// wired (queue, meter). A subscription is live no later than the moment
// its registration returns; an event published concurrently with
// registration may or may not be delivered.
func (e *Embedded) register(root *Node, o subOptions, legacy bool) (*Handle, error) {
	if o.durable != "" {
		// Durable subscriptions are Persist by construction: the default
		// Block is promoted, the drop policies contradict durability.
		switch {
		case e.wal == nil:
			return nil, fmt.Errorf("dimprune: WithDurable(%q) requires EmbeddedConfig.WALDir", o.durable)
		case legacy:
			return nil, fmt.Errorf("dimprune: the deprecated Subscribe API cannot be durable")
		case o.policy != Block && o.policy != Persist:
			return nil, fmt.Errorf("dimprune: durable subscriptions are Persist, not %v", o.policy)
		}
		o.policy = Persist
	} else {
		switch {
		case o.policy == Persist:
			return nil, fmt.Errorf("dimprune: the Persist policy requires WithDurable")
		case o.manualAck:
			return nil, fmt.Errorf("dimprune: WithManualAck requires WithDurable")
		case !o.policy.Valid():
			return nil, fmt.Errorf("dimprune: invalid backpressure policy %d", o.policy)
		}
	}
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil, ErrClosed
	}
	e.nextID++
	id := e.nextID
	e.mu.Unlock()

	s, err := NewSubscription(id, o.subscriber, root)
	if err != nil {
		return nil, err
	}
	h := newHandle(e, id, o, legacy)
	// Registered via the virtual link so the entry is prunable.
	if _, err := e.b.HandleSubscribe(0, s); err != nil {
		h.retire(true, false)
		return nil, err
	}
	h.meter = e.b.DeliveryMeter(id)
	if o.durable != "" {
		// Attach the durable cursor and start the replay pump. First
		// attach registers the name (durability begins here); reattach
		// resumes after the persisted ack, redelivering the unacked
		// suffix.
		c, err := e.wal.Attach(o.durable)
		if err != nil {
			_, _ = e.b.HandleUnsubscribe(0, id)
			h.retire(true, false)
			return nil, err
		}
		h.startPump(root, c)
	}

	e.mu.Lock()
	if e.closed {
		// Close raced the registration; unwind as if it never happened.
		e.mu.Unlock()
		_, _ = e.b.HandleUnsubscribe(0, id)
		h.retire(true, false)
		return nil, ErrClosed
	}
	e.subs[id] = h
	e.mu.Unlock()
	return h, nil
}

// forget is the handle-retirement half of unsubscription: it removes the
// handle from the engine and the subscription from the routing table.
// Publishes that already hold the handle finish against its queue, which
// the caller (Handle.retire) closes next.
func (e *Embedded) forget(id uint64) error {
	e.mu.Lock()
	_, known := e.subs[id]
	delete(e.subs, id)
	e.mu.Unlock()
	if !known {
		return fmt.Errorf("dimprune: unknown subscription %d", id)
	}
	_, err := e.b.HandleUnsubscribe(0, id)
	return err
}

// OnNotify installs the delivery callback for subscriptions made through
// the deprecated Subscribe/SubscribeText API. Those callbacks run
// synchronously on the publishing goroutine and may be invoked
// concurrently when publishers are concurrent.
//
// Deprecated: use SubscribeExpr or SubscribeTree, whose Handle owns
// delivery per subscription (WithCallback for the callback form).
func (e *Embedded) OnNotify(fn func(Notification)) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notify = fn
}

// SubscribeText registers a subscription in text syntax for the OnNotify
// callback and returns its assigned ID.
//
// Deprecated: use SubscribeExpr, which returns a Handle owning its own
// delivery queue and lifecycle.
func (e *Embedded) SubscribeText(subscriber, expr string) (uint64, error) {
	root, err := Parse(expr)
	if err != nil {
		return 0, err
	}
	return e.Subscribe(subscriber, root)
}

// Subscribe registers a subscription tree for the OnNotify callback and
// returns its assigned ID.
//
// Deprecated: use SubscribeTree, which returns a Handle owning its own
// delivery queue and lifecycle.
func (e *Embedded) Subscribe(subscriber string, root *Node) (uint64, error) {
	o := defaultSubOptions()
	o.subscriber = subscriber
	h, err := e.register(root, o, true)
	if err != nil {
		return 0, err
	}
	return h.ID(), nil
}

// Unsubscribe retracts a subscription by ID.
//
// Deprecated: use Handle.Unsubscribe.
func (e *Embedded) Unsubscribe(id uint64) error {
	e.mu.RLock()
	h := e.subs[id]
	e.mu.RUnlock()
	if h == nil {
		return fmt.Errorf("dimprune: unknown subscription %d", id)
	}
	return h.Unsubscribe()
}

// Publish matches an event against all subscriptions, enqueues a
// notification onto each matching subscription's delivery queue, and
// returns the match count. Publishes run concurrently with each other;
// matching never waits on consumers. Enqueueing honors each handle's
// backpressure policy — under Block a full queue makes Publish wait for
// that consumer (after matching, affecting only this publisher), under
// DropOldest/DropNewest it never waits.
func (e *Embedded) Publish(m *Message) (int, error) {
	if m == nil {
		return 0, ErrNilMessage
	}
	// Write-ahead: the event is durable before any delivery is attempted,
	// so a crash after this point redelivers rather than loses. Gated
	// inside the store on durables being registered — an engine with no
	// durable subscribers skips the log entirely.
	if e.wal != nil {
		if _, err := e.wal.AppendMessage(m); err != nil {
			return 0, err
		}
	}
	pb := e.scratch()
	defer e.release(pb)
	e.b.MatchEntries(m, func(subID uint64, subscriber string) {
		pb.refs = append(pb.refs, matchRef{subID: subID, subscriber: subscriber})
	})
	matches := len(pb.refs)
	notify, err := e.resolve(pb)
	if err != nil {
		return 0, err
	}
	for i, h := range pb.targets {
		h.deliver(Notification{Subscriber: pb.refs[i].subscriber, SubID: pb.refs[i].subID, Msg: m}, notify)
	}
	return matches, nil
}

// PublishBatch publishes a burst of events in order, returning the total
// match count. The broker holds its shared routing lock once for the whole
// burst, which amortizes the handoff under bursty load; delivery then
// proceeds per event in batch order.
func (e *Embedded) PublishBatch(ms []*Message) (int, error) {
	for _, m := range ms {
		if m == nil {
			return 0, ErrNilMessage
		}
	}
	if e.wal != nil {
		// Same write-ahead rule as Publish, event by event in batch order.
		for _, m := range ms {
			if _, err := e.wal.AppendMessage(m); err != nil {
				return 0, err
			}
		}
	}
	pb := e.scratch()
	defer e.release(pb)
	e.b.MatchEntriesBatch(ms, func(i int, subID uint64, subscriber string) {
		pb.refs = append(pb.refs, matchRef{batchIdx: i, subID: subID, subscriber: subscriber})
	})
	matches := len(pb.refs)
	notify, err := e.resolve(pb)
	if err != nil {
		return 0, err
	}
	for i, h := range pb.targets {
		r := pb.refs[i]
		h.deliver(Notification{Subscriber: r.subscriber, SubID: r.subID, Msg: ms[r.batchIdx]}, notify)
	}
	return matches, nil
}

// scratch fetches pooled publish buffers.
//
//dimlint:pooled
func (e *Embedded) scratch() *publishBuffers {
	pb, _ := e.pubScratch.Get().(*publishBuffers)
	if pb == nil {
		pb = &publishBuffers{}
	}
	return pb
}

// release clears handle references and returns the buffers to the pool.
func (e *Embedded) release(pb *publishBuffers) {
	pb.refs = pb.refs[:0]
	for i := range pb.targets {
		pb.targets[i] = nil
	}
	pb.targets = pb.targets[:0]
	e.pubScratch.Put(pb)
}

// resolve maps collected match refs to live handles (dropping entries
// unsubscribed since the match) and captures the legacy callback. refs and
// targets stay index-aligned: refs is compacted to the resolved matches.
func (e *Embedded) resolve(pb *publishBuffers) (func(Notification), error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return nil, ErrClosed
	}
	kept := 0
	for _, r := range pb.refs {
		if h := e.subs[r.subID]; h != nil {
			pb.refs[kept] = r
			pb.targets = append(pb.targets, h)
			kept++
		}
	}
	pb.refs = pb.refs[:kept]
	return e.notify, nil
}

// Close retires the engine: subsequent Publish and Subscribe calls return
// ErrClosed, every handle's queue is drained (channel handles close after
// their buffered notifications, callback handles finish their backlog),
// and their delivery goroutines exit. Close is idempotent and must not be
// called from a WithCallback callback.
func (e *Embedded) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	handles := make([]*Handle, 0, len(e.subs))
	for _, h := range e.subs {
		handles = append(handles, h)
	}
	e.subs = make(map[uint64]*Handle)
	e.mu.Unlock()
	for _, h := range handles {
		h.retire(false, false)
	}
	if e.wal != nil {
		return e.wal.Close()
	}
	return nil
}

// Kill tears the engine down the way a crash would: handles retire with
// their backlogs discarded and the WAL is abandoned without flushing, so
// reopening the same WALDir replays exactly what a process kill at this
// moment would leave behind. It exists for crash-recovery testing; a
// clean shutdown uses Close. Durable registrations survive (that is the
// point); ephemeral subscriptions are simply gone.
func (e *Embedded) Kill() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	handles := make([]*Handle, 0, len(e.subs))
	for _, h := range e.subs {
		handles = append(handles, h)
	}
	e.subs = make(map[uint64]*Handle)
	e.mu.Unlock()
	if e.wal != nil {
		// Abandon the log first: pumps blocked in cursor reads unblock
		// with ErrClosed, mirroring the order a real crash imposes (the
		// disk state freezes before the goroutines die).
		e.wal.Crash()
	}
	for _, h := range handles {
		h.retire(true, false)
	}
}

// Prune applies up to n pruning steps and returns the number performed.
// After pruning, Publish may over-deliver (supersets), never under-deliver.
func (e *Embedded) Prune(n int) int {
	return e.b.Prune(n)
}

// Stats snapshots the engine, including per-subscription delivery
// metadata (Stats.Delivery).
func (e *Embedded) Stats() broker.Stats {
	return e.b.Stats()
}

// SetDimension switches the pruning heuristic at runtime.
func (e *Embedded) SetDimension(d Dimension) error {
	return e.b.SetDimension(d)
}

// Model exposes the selectivity model (e.g. to pre-train it).
func (e *Embedded) Model() *selectivity.Model {
	return e.b.Model()
}
