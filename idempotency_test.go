package dimprune

import (
	"errors"
	"testing"
)

// The lifecycle operations of the public API are idempotent: a second
// Embedded.Close and any Handle.Unsubscribe after the handle retired are
// no-ops returning nil.

func TestEmbeddedCloseIdempotent(t *testing.T) {
	e, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := e.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The engine is really closed, not resurrected.
	if _, err := e.SubscribeExpr(`y = 2`); !errors.Is(err, ErrClosed) {
		t.Errorf("Subscribe after double Close = %v, want ErrClosed", err)
	}
	if _, err := e.Publish(NewEvent(1).Msg()); !errors.Is(err, ErrClosed) {
		t.Errorf("Publish after double Close = %v, want ErrClosed", err)
	}
	// Unsubscribing a handle the Close already retired is a no-op.
	if err := h.Unsubscribe(); err != nil {
		t.Errorf("Unsubscribe after Close = %v, want nil", err)
	}
}

func TestHandleUnsubscribeIdempotent(t *testing.T) {
	e, err := NewEmbedded(EmbeddedConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	h, err := e.SubscribeExpr(`x = 1`)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Unsubscribe(); err != nil {
		t.Fatalf("first Unsubscribe: %v", err)
	}
	if err := h.Unsubscribe(); err != nil {
		t.Fatalf("second Unsubscribe: %v", err)
	}
	// The subscription is really gone: publishes no longer match and the
	// deprecated by-ID retraction reports it unknown.
	if n, err := e.Publish(NewEvent(1).Int("x", 1).Msg()); err != nil || n != 0 {
		t.Errorf("Publish after Unsubscribe = %d matches, %v", n, err)
	}
	if err := e.Unsubscribe(h.ID()); err == nil {
		t.Error("deprecated Unsubscribe found a retired subscription")
	}

	// Callback mode retires identically.
	hc, err := e.SubscribeExpr(`x = 2`, WithCallback(func(Notification) {}))
	if err != nil {
		t.Fatal(err)
	}
	if err := hc.Unsubscribe(); err != nil {
		t.Fatalf("callback Unsubscribe: %v", err)
	}
	if err := hc.Unsubscribe(); err != nil {
		t.Fatalf("second callback Unsubscribe: %v", err)
	}
}
