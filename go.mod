module dimprune

go 1.24
