package dimprune

import "errors"

// Sentinel errors of the public API. Match them with errors.Is.
var (
	// ErrClosed reports an operation on a closed Embedded engine or a
	// retired subscription handle.
	ErrClosed = errors.New("dimprune: closed")

	// ErrNilMessage reports a nil *Message passed to Publish or
	// PublishBatch.
	ErrNilMessage = errors.New("dimprune: nil message")
)
