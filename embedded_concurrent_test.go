package dimprune

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"dimprune/internal/auction"
)

// TestEmbeddedConcurrentPublish drives the public API from many goroutines
// across worker/shard layouts and checks per-event match counts against a
// serial reference instance, interleaved with pruning. After pruning the
// layouts may legitimately over-match (supersets) — the test then only
// requires no under-matching versus the reference pruned identically.
func TestEmbeddedConcurrentPublish(t *testing.T) {
	gen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const nSubs = 500
	const nEvents = 400

	newInstance := func(workers, shards int) *Embedded {
		ps, err := NewEmbedded(EmbeddedConfig{
			MatchWorkers: workers, Shards: shards, DisableLearning: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		return ps
	}
	serial := newInstance(1, 1)
	parallel := newInstance(4, 8)

	subGen, err := auction.NewGenerator(auction.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nSubs; i++ {
		s, err := subGen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := serial.Subscribe(s.Subscriber, s.Root); err != nil {
			t.Fatal(err)
		}
		if _, err := parallel.Subscribe(s.Subscriber, s.Root); err != nil {
			t.Fatal(err)
		}
	}
	events := gen.Events(1, nEvents)

	check := func(exact bool) {
		want := make([]int, nEvents)
		for i, m := range events {
			n, err := serial.Publish(m)
			if err != nil {
				t.Fatal(err)
			}
			want[i] = n
		}
		got := make([]int64, nEvents)
		var wg sync.WaitGroup
		for g := 0; g < 8; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				for i := g; i < nEvents; i += 8 {
					n, err := parallel.Publish(events[i])
					if err != nil {
						t.Error(err)
						return
					}
					atomic.StoreInt64(&got[i], int64(n))
				}
			}(g)
		}
		wg.Wait()
		for i := range want {
			if exact && int(got[i]) != want[i] {
				t.Fatalf("event %d: parallel matched %d, serial %d", i, got[i], want[i])
			}
			if !exact && int(got[i]) < want[i] {
				t.Fatalf("event %d: pruned parallel under-matched: %d < %d", i, got[i], want[i])
			}
		}
	}

	check(true) // unpruned: layouts must agree exactly

	// Prune both; pruning only generalizes, so whatever steps each instance
	// chose, the parallel instance must never under-match its serial twin
	// (the twin was pruned at least as hard in step count).
	ns, np := serial.Prune(200), parallel.Prune(200)
	if ns == 0 || np == 0 {
		t.Fatal("pruning performed no steps; superset phase is vacuous")
	}
	check(false)
	if st := parallel.Stats(); st.Counters.EventsFiltered == 0 {
		t.Fatal("stats lost the filtered-event count")
	}
}
