package dimprune

import (
	"fmt"
	"sync"
	"sync/atomic"

	"dimprune/internal/broker"
	"dimprune/internal/delivery"
	"dimprune/internal/wal"
	"dimprune/internal/wire"
)

// Handle is one registered subscription and the owner of its delivery.
// SubscribeExpr and SubscribeTree return a handle per subscription; the
// handle delivers either on a buffered channel (C, the default) or by a
// dedicated-goroutine callback (WithCallback), with a per-subscription
// queue between the match path and the consumer.
//
// Publish enqueues matches onto that queue and moves on, so a consumer
// that falls behind affects only its own subscription: under DropOldest
// or DropNewest the overflow is shed (counted by Dropped), and under
// Block only the publishing goroutine waits — never the matching lock,
// other subscribers, or the control plane.
//
// Handles are safe for concurrent use. Unsubscribe retires the handle;
// Embedded.Close retires all handles after draining their queues.
type Handle struct {
	id         uint64
	subscriber string
	e          *Embedded
	meter      *broker.DeliveryMeter

	// q is the delivery queue; nil only for legacy subscriptions made
	// through the deprecated uint64-ID API, which deliver synchronously
	// via the OnNotify callback.
	q  *delivery.Queue[Notification]
	cb func(Notification) // callback mode: invoked by the drain goroutine

	// discard, set by Unsubscribe before the queue closes, tells the
	// drain goroutine to stop delivering: unsubscription means "no more
	// notifications", while Close (which leaves discard unset) means
	// "finish the backlog".
	discard   atomic.Bool
	drainDone chan struct{} // closed when the callback drainer exits; nil otherwise

	// consumed counts callback invocations that actually ran — the
	// delivered figure for callback handles, where enqueue-time counting
	// would include a discarded backlog (see Delivered).
	consumed atomic.Uint64

	// Durable plane (WithDurable): the handle is fed by pumpLoop replaying
	// the engine's WAL through cursor, not by the live deliver path.
	durable   string
	manualAck bool
	cursor    *wal.Cursor
	pumpStop  chan struct{}
	pumpDone  chan struct{}

	retireOnce sync.Once
	retireErr  error
}

// newHandle wires a handle for the given options; legacy is true for the
// deprecated uint64-ID API (synchronous OnNotify delivery, no queue).
func newHandle(e *Embedded, id uint64, o subOptions, legacy bool) *Handle {
	h := &Handle{id: id, subscriber: o.subscriber, e: e, cb: o.callback}
	if legacy {
		return h
	}
	if o.durable != "" {
		// Durable: pumpLoop (started by register once the cursor is
		// attached) feeds the consumer directly in callback mode, or
		// through an internal Block queue in channel mode — the WAL is
		// the buffer, so drop policies don't apply.
		h.durable, h.manualAck = o.durable, o.manualAck
		h.pumpStop = make(chan struct{})
		if h.cb == nil {
			h.q = delivery.New[Notification](o.buffer, delivery.Block)
		}
		return h
	}
	h.q = delivery.New[Notification](o.buffer, o.policy)
	if h.cb != nil {
		h.drainDone = make(chan struct{})
		go h.drainLoop()
	}
	return h
}

// drainLoop is the dedicated delivery goroutine of a callback handle.
func (h *Handle) drainLoop() {
	defer close(h.drainDone)
	for n := range h.q.C() {
		if h.discard.Load() {
			continue
		}
		h.cb(n)
		// Delivered-at-invocation: counting at enqueue time inflated the
		// meter with backlog that Unsubscribe later discarded.
		h.consumed.Add(1)
		h.meter.NoteDelivered(1)
	}
}

// startPump attaches the durable cursor and launches the replay pump.
// Called by register after the broker-side registration succeeded; a
// handle unwound before this point has no pump to wait for.
func (h *Handle) startPump(root *Node, c *wal.Cursor) {
	h.cursor = c
	h.pumpDone = make(chan struct{})
	go h.pumpLoop(root)
}

// pumpLoop is the delivery goroutine of a durable handle: it replays the
// engine's WAL from the durable cursor, matching each logged event against
// the subscription tree exactly (replay matching is unaffected by pruning
// — the log predates the routing table's approximations). Matching events
// are delivered with their log sequence; non-matching ones advance the
// cursor via Skip so retention is not held back. The loop exits when the
// handle retires, the cursor detaches, or the store closes.
func (h *Handle) pumpLoop(root *Node) {
	defer close(h.pumpDone)
	for {
		seq, payload, err := h.cursor.Next(h.pumpStop)
		if err != nil {
			return
		}
		m, _, err := wire.DecodeMessage(payload)
		if err != nil {
			// Recovery CRC-checks every record, so a decode failure means
			// a foreign or future-versioned log; skipping would silently
			// lose data, so stop the pump instead.
			return
		}
		if !root.Matches(m) {
			h.cursor.Skip(seq)
			continue
		}
		n := Notification{Subscriber: h.subscriber, SubID: h.id, Seq: seq, Msg: m}
		if h.cb != nil {
			if h.discard.Load() {
				return
			}
			h.cb(n)
			h.consumed.Add(1)
			h.meter.NoteDelivered(1)
			if !h.manualAck {
				if err := h.cursor.Ack(seq); err != nil {
					return
				}
			}
			continue
		}
		accepted, _ := h.q.Enqueue(n)
		if !accepted {
			return // queue closed: the handle is retiring
		}
		h.meter.NoteDelivered(1)
	}
}

// ID returns the subscription's identifier (also usable with the
// deprecated Embedded.Unsubscribe).
func (h *Handle) ID() uint64 { return h.id }

// Subscriber returns the subscriber name given via WithSubscriber.
func (h *Handle) Subscriber() string { return h.subscriber }

// C returns the delivery channel. It carries notifications in
// per-subscription publish order, holds up to the configured buffer, and
// is closed when the handle retires (buffered notifications stay
// receivable after Unsubscribe/Close). C returns nil for callback-mode
// and legacy subscriptions.
func (h *Handle) C() <-chan Notification {
	if h.cb != nil || h.q == nil {
		return nil
	}
	return h.q.C()
}

// Policy returns the handle's delivery policy: the queue's backpressure
// policy for buffered subscriptions, Persist for durable ones, and
// Synchronous for legacy OnNotify subscriptions (which have no queue and
// previously misreported Block here).
func (h *Handle) Policy() Policy {
	if h.durable != "" {
		return Persist
	}
	if h.q == nil {
		return Synchronous
	}
	return h.q.Policy()
}

// Durable returns the durable name given via WithDurable, or "" for an
// ephemeral subscription.
func (h *Handle) Durable() string { return h.durable }

// Ack marks every durable notification up to and including seq (a
// Notification.Seq) as processed: it is persisted and never redelivered,
// and the log space it occupies becomes reclaimable. Acks are cumulative.
// Channel-mode durable consumers must call it; callback mode only under
// WithManualAck. On a non-durable handle Ack is an error.
func (h *Handle) Ack(seq uint64) error {
	if h.cursor == nil {
		return fmt.Errorf("dimprune: Ack on non-durable subscription %d", h.id)
	}
	return h.cursor.Ack(seq)
}

// Delivered returns how many notifications the subscription's consumer
// has received: enqueue count for channel handles (the buffer is part of
// the consumer's side), completed callback invocations for callback
// handles — backlog discarded by Unsubscribe is not "delivered".
func (h *Handle) Delivered() uint64 {
	if h.cb != nil {
		return h.consumed.Load()
	}
	if h.q == nil {
		return h.meter.Delivered()
	}
	return h.q.Enqueued()
}

// Dropped returns how many notifications the backpressure policy has shed
// (always 0 under Block).
func (h *Handle) Dropped() uint64 {
	if h.q == nil {
		return 0
	}
	return h.q.Dropped()
}

// Unsubscribe retracts the subscription and retires the handle: once it
// returns, no new notification is enqueued. In callback mode the queued
// backlog is discarded and a pending callback invocation has completed —
// the callback never runs after Unsubscribe returns. In channel mode the
// channel is closed; notifications already buffered remain receivable
// (channel semantics), so a consumer that must ignore them should stop
// reading before unsubscribing. It is idempotent: any call after the
// handle retired — a repeat Unsubscribe, or an Unsubscribe after
// Embedded.Close — is a no-op returning nil. Calling it from a
// WithCallback callback deadlocks (the callback goroutine would wait on
// itself).
func (h *Handle) Unsubscribe() error {
	return h.retire(true, true)
}

// retire tears the handle down. discard controls whether queued items are
// delivered (Close) or dropped (Unsubscribe); unregister removes the
// subscription from the engine and its routing table. Only the invocation
// that performs the retirement sees its error; later calls no-op and
// return nil.
func (h *Handle) retire(discard, unregister bool) error {
	ran := false
	h.retireOnce.Do(func() {
		ran = true
		if unregister {
			h.retireErr = h.e.forget(h.id)
		}
		h.discard.Store(discard)
		if h.pumpStop != nil {
			close(h.pumpStop)
		}
		if h.q != nil {
			h.q.Close()
		}
		if h.drainDone != nil {
			<-h.drainDone
		}
		if h.pumpDone != nil {
			<-h.pumpDone
		}
		if h.cursor != nil {
			h.cursor.Detach()
			if unregister {
				// Unsubscribe ends the durable itself: drop its cursor so
				// it stops holding log segments. Close/Kill leave the
				// registration for the next attach.
				if err := h.e.wal.Forget(h.durable); err != nil && h.retireErr == nil {
					h.retireErr = err
				}
			}
		}
	})
	if !ran {
		return nil
	}
	return h.retireErr
}

// deliver hands one notification to the handle's consumer. It runs after
// the matching lock is released; notify is the engine's legacy OnNotify
// callback captured by the publisher.
func (h *Handle) deliver(n Notification, notify func(Notification)) {
	if h.q == nil {
		// Legacy subscription: synchronous callback on the publishing
		// goroutine, exactly the pre-handle contract.
		if notify != nil {
			notify(n)
			h.meter.NoteDelivered(1)
		}
		return
	}
	if h.cursor != nil {
		// Durable: the WAL replay pump is the only delivery path, so the
		// live match is dropped here — the same event reaches the pump
		// through the log, with its sequence number attached.
		return
	}
	accepted, dropped := h.q.Enqueue(n)
	if accepted && h.cb == nil {
		// Callback handles count delivery at invocation (drainLoop), not
		// at enqueue — an enqueued-then-discarded backlog was never
		// delivered to anyone.
		h.meter.NoteDelivered(1)
	}
	if dropped > 0 {
		h.meter.NoteDropped(uint64(dropped))
	}
}
