package dimprune

import (
	"sync"
	"sync/atomic"

	"dimprune/internal/broker"
	"dimprune/internal/delivery"
)

// Handle is one registered subscription and the owner of its delivery.
// SubscribeExpr and SubscribeTree return a handle per subscription; the
// handle delivers either on a buffered channel (C, the default) or by a
// dedicated-goroutine callback (WithCallback), with a per-subscription
// queue between the match path and the consumer.
//
// Publish enqueues matches onto that queue and moves on, so a consumer
// that falls behind affects only its own subscription: under DropOldest
// or DropNewest the overflow is shed (counted by Dropped), and under
// Block only the publishing goroutine waits — never the matching lock,
// other subscribers, or the control plane.
//
// Handles are safe for concurrent use. Unsubscribe retires the handle;
// Embedded.Close retires all handles after draining their queues.
type Handle struct {
	id         uint64
	subscriber string
	e          *Embedded
	meter      *broker.DeliveryMeter

	// q is the delivery queue; nil only for legacy subscriptions made
	// through the deprecated uint64-ID API, which deliver synchronously
	// via the OnNotify callback.
	q  *delivery.Queue[Notification]
	cb func(Notification) // callback mode: invoked by the drain goroutine

	// discard, set by Unsubscribe before the queue closes, tells the
	// drain goroutine to stop delivering: unsubscription means "no more
	// notifications", while Close (which leaves discard unset) means
	// "finish the backlog".
	discard   atomic.Bool
	drainDone chan struct{} // closed when the callback drainer exits; nil otherwise

	retireOnce sync.Once
	retireErr  error
}

// newHandle wires a handle for the given options; legacy is true for the
// deprecated uint64-ID API (synchronous OnNotify delivery, no queue).
func newHandle(e *Embedded, id uint64, o subOptions, legacy bool) *Handle {
	h := &Handle{id: id, subscriber: o.subscriber, e: e, cb: o.callback}
	if legacy {
		return h
	}
	h.q = delivery.New[Notification](o.buffer, o.policy)
	if h.cb != nil {
		h.drainDone = make(chan struct{})
		go h.drainLoop()
	}
	return h
}

// drainLoop is the dedicated delivery goroutine of a callback handle.
func (h *Handle) drainLoop() {
	defer close(h.drainDone)
	for n := range h.q.C() {
		if h.discard.Load() {
			continue
		}
		h.cb(n)
	}
}

// ID returns the subscription's identifier (also usable with the
// deprecated Embedded.Unsubscribe).
func (h *Handle) ID() uint64 { return h.id }

// Subscriber returns the subscriber name given via WithSubscriber.
func (h *Handle) Subscriber() string { return h.subscriber }

// C returns the delivery channel. It carries notifications in
// per-subscription publish order, holds up to the configured buffer, and
// is closed when the handle retires (buffered notifications stay
// receivable after Unsubscribe/Close). C returns nil for callback-mode
// and legacy subscriptions.
func (h *Handle) C() <-chan Notification {
	if h.cb != nil || h.q == nil {
		return nil
	}
	return h.q.C()
}

// Policy returns the handle's backpressure policy.
func (h *Handle) Policy() Policy {
	if h.q == nil {
		return Block
	}
	return h.q.Policy()
}

// Delivered returns how many notifications the subscription has accepted
// for delivery.
func (h *Handle) Delivered() uint64 {
	if h.q == nil {
		return h.meter.Delivered()
	}
	return h.q.Enqueued()
}

// Dropped returns how many notifications the backpressure policy has shed
// (always 0 under Block).
func (h *Handle) Dropped() uint64 {
	if h.q == nil {
		return 0
	}
	return h.q.Dropped()
}

// Unsubscribe retracts the subscription and retires the handle: once it
// returns, no new notification is enqueued. In callback mode the queued
// backlog is discarded and a pending callback invocation has completed —
// the callback never runs after Unsubscribe returns. In channel mode the
// channel is closed; notifications already buffered remain receivable
// (channel semantics), so a consumer that must ignore them should stop
// reading before unsubscribing. It is idempotent: any call after the
// handle retired — a repeat Unsubscribe, or an Unsubscribe after
// Embedded.Close — is a no-op returning nil. Calling it from a
// WithCallback callback deadlocks (the callback goroutine would wait on
// itself).
func (h *Handle) Unsubscribe() error {
	return h.retire(true, true)
}

// retire tears the handle down. discard controls whether queued items are
// delivered (Close) or dropped (Unsubscribe); unregister removes the
// subscription from the engine and its routing table. Only the invocation
// that performs the retirement sees its error; later calls no-op and
// return nil.
func (h *Handle) retire(discard, unregister bool) error {
	ran := false
	h.retireOnce.Do(func() {
		ran = true
		if unregister {
			h.retireErr = h.e.forget(h.id)
		}
		h.discard.Store(discard)
		if h.q != nil {
			h.q.Close()
		}
		if h.drainDone != nil {
			<-h.drainDone
		}
	})
	if !ran {
		return nil
	}
	return h.retireErr
}

// deliver hands one notification to the handle's consumer. It runs after
// the matching lock is released; notify is the engine's legacy OnNotify
// callback captured by the publisher.
func (h *Handle) deliver(n Notification, notify func(Notification)) {
	if h.q == nil {
		// Legacy subscription: synchronous callback on the publishing
		// goroutine, exactly the pre-handle contract.
		if notify != nil {
			notify(n)
			h.meter.NoteDelivered(1)
		}
		return
	}
	accepted, dropped := h.q.Enqueue(n)
	if accepted {
		h.meter.NoteDelivered(1)
	}
	if dropped > 0 {
		h.meter.NoteDropped(uint64(dropped))
	}
}
