// Quickstart: embed a publish/subscribe engine, register Boolean
// subscriptions, publish events, and watch dimension-based pruning trade
// exactness for routing-table size.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"dimprune"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ps, err := dimprune.NewEmbedded(dimprune.EmbeddedConfig{Dimension: dimprune.Network})
	if err != nil {
		return err
	}
	ps.OnNotify(func(n dimprune.Notification) {
		fmt.Printf("  -> %s (subscription %d) notified about event %d\n",
			n.Subscriber, n.SubID, n.Msg.ID)
	})

	// Subscriptions are arbitrary Boolean expressions; text syntax and
	// builders are interchangeable.
	if _, err := ps.SubscribeText("alice",
		`category = "scifi" and (author = "Le Guin" or author = "Herbert") and price <= 25`); err != nil {
		return err
	}
	bobTree := dimprune.And(
		dimprune.Eq("category", dimprune.Str("crime")),
		dimprune.Ge("rating", dimprune.Int(4)),
	)
	if _, err := ps.Subscribe("bob", bobTree); err != nil {
		return err
	}

	fmt.Println("publishing three listings:")
	events := []*dimprune.Message{
		dimprune.NewEvent(1).Str("category", "scifi").Str("author", "Le Guin").Num("price", 18).Msg(),
		dimprune.NewEvent(2).Str("category", "scifi").Str("author", "Banks").Num("price", 18).Msg(),
		dimprune.NewEvent(3).Str("category", "crime").Int("rating", 5).Num("price", 12).Msg(),
	}
	for _, m := range events {
		if _, err := ps.Publish(m); err != nil {
			return err
		}
	}

	st := ps.Stats()
	fmt.Printf("\nbefore pruning: %d subscriptions, %d predicate/subscription associations\n",
		st.LocalSubs+st.RemoteSubs, st.Associations)

	// Prune one step: the engine generalizes whichever subscription costs
	// the least extra traffic (network dimension).
	ps.Prune(1)
	st = ps.Stats()
	fmt.Printf("after 1 pruning: %d associations (pruned %d)\n\n", st.Associations, st.PruningsDone)

	fmt.Println("republishing the same listings (matching may widen, never shrink):")
	for _, m := range events {
		if _, err := ps.Publish(m); err != nil {
			return err
		}
	}
	return nil
}
