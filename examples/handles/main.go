// Handles: the subscription-handle API — per-subscription delivery
// queues, backpressure policies, and lifecycle.
//
// A slow consumer is the normal case at scale, so each subscription owns
// its delivery: a fast channel subscriber, a callback subscriber, and a
// deliberately stuck subscriber run side by side, and only the stuck one
// pays for being stuck.
//
//	go run ./examples/handles
package main

import (
	"fmt"
	"log"
	"sync/atomic"

	"dimprune"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ps, err := dimprune.NewEmbedded(dimprune.EmbeddedConfig{})
	if err != nil {
		return err
	}
	defer ps.Close()

	// A channel subscriber: notifications arrive on fast.C() in publish
	// order, buffered up to WithBuffer.
	fast, err := ps.SubscribeExpr(`category = "scifi"`,
		dimprune.WithSubscriber("fast-reader"),
		dimprune.WithBuffer(16))
	if err != nil {
		return err
	}

	// A callback subscriber: its own goroutine drains the queue and runs
	// the function — publishers never execute subscriber code.
	var callbackSeen atomic.Uint64
	_, err = ps.SubscribeExpr(`price <= 20`,
		dimprune.WithSubscriber("callback-reader"),
		dimprune.WithCallback(func(n dimprune.Notification) {
			callbackSeen.Add(1)
		}))
	if err != nil {
		return err
	}

	// A stuck subscriber: nobody ever reads stuck.C(). With DropOldest
	// and a tiny buffer it sheds its backlog instead of stalling Publish.
	stuck, err := ps.SubscribeExpr(`category = "scifi" or category = "crime"`,
		dimprune.WithSubscriber("stuck-reader"),
		dimprune.WithBuffer(2),
		dimprune.WithPolicy(dimprune.DropOldest))
	if err != nil {
		return err
	}

	const events = 100
	for i := 1; i <= events; i++ {
		cat := "scifi"
		if i%2 == 0 {
			cat = "crime"
		}
		m := dimprune.NewEvent(uint64(i)).Str("category", cat).Num("price", float64(i%40)).Msg()
		if _, err := ps.Publish(m); err != nil {
			return err
		}
		// The fast reader keeps up inline for the demo.
		for len(fast.C()) > 0 {
			n := <-fast.C()
			if n.Msg.ID != uint64(i) {
				return fmt.Errorf("fast reader out of order: %d", n.Msg.ID)
			}
		}
	}

	fmt.Printf("published %d events with one permanently stuck subscriber\n\n", events)
	fmt.Printf("fast-reader:  delivered=%d dropped=%d (kept up)\n", fast.Delivered(), fast.Dropped())
	fmt.Printf("stuck-reader: delivered=%d dropped=%d (buffer 2, DropOldest)\n\n",
		stuck.Delivered(), stuck.Dropped())

	// The engine's stats carry the same per-subscription accounting.
	for _, ed := range ps.Stats().Delivery {
		fmt.Printf("  sub %d (%s): delivered=%d dropped=%d\n",
			ed.SubID, ed.Subscriber, ed.Delivered, ed.Dropped)
	}

	// Lifecycle: Unsubscribe guarantees no delivery after it returns.
	if err := stuck.Unsubscribe(); err != nil {
		return err
	}
	if _, err := ps.Publish(dimprune.NewEvent(999).Str("category", "crime").Msg()); err != nil {
		return err
	}
	fmt.Printf("\nafter Unsubscribe: stuck-reader delivered=%d (unchanged)\n", stuck.Delivered())

	// Close drains: the callback subscriber's queue finishes delivering
	// before Close returns, and further publishes are rejected.
	if err := ps.Close(); err != nil {
		return err
	}
	fmt.Printf("after Close: callback-reader saw %d notifications (queue drained)\n", callbackSeen.Load())
	if _, err := ps.Publish(dimprune.NewEvent(1000).Str("category", "scifi").Msg()); err != nil {
		fmt.Println("publish after Close:", err)
	}
	return nil
}
