// Distributed: five brokers in a line route auction events under
// subscription forwarding; pruning shrinks routing tables while the
// simulation counts the extra frames each dimension costs — a miniature of
// Fig 1(e).
//
//	go run ./examples/distributed
package main

import (
	"fmt"
	"log"

	"dimprune"
)

const (
	numBrokers = 5
	numSubs    = 1500
	numTrain   = 1500
	numEvents  = 800
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("line of %d brokers, %d subscriptions, %d events\n\n", numBrokers, numSubs, numEvents)
	fmt.Printf("%-12s %12s %12s %16s %16s\n",
		"dimension", "prunings", "frames", "vs unpruned", "deliveries")

	baseline := uint64(0)
	for _, step := range []struct {
		dim   dimprune.Dimension
		prune bool
	}{
		{dimprune.Network, false}, // unpruned baseline, dimension irrelevant
		{dimprune.Network, true},
		{dimprune.Throughput, true},
		{dimprune.Memory, true},
	} {
		frames, prunings, deliveries, err := runOverlay(step.dim, step.prune)
		if err != nil {
			return err
		}
		label := step.dim.String()
		if !step.prune {
			label = "unpruned"
			baseline = frames
		}
		growth := "-"
		if step.prune && baseline > 0 {
			growth = fmt.Sprintf("%+.1f%%", (float64(frames)/float64(baseline)-1)*100)
		}
		fmt.Printf("%-12s %12d %12d %16s %16d\n", label, prunings, frames, growth, deliveries)
	}
	fmt.Println("\ndeliveries are identical in every row: pruning only adds overlay")
	fmt.Println("traffic (post-filtered away), never false or missed notifications.")
	return nil
}

// runOverlay builds the overlay, optionally prunes half of each broker's
// possible prunings, publishes the event stream, and reports traffic.
func runOverlay(dim dimprune.Dimension, prune bool) (frames uint64, prunings int, deliveries int, err error) {
	w, err := dimprune.NewWorkload(dimprune.DefaultWorkloadConfig())
	if err != nil {
		return 0, 0, 0, err
	}
	net, err := dimprune.NewLineOverlay(numBrokers, dim)
	if err != nil {
		return 0, 0, 0, err
	}
	// Train every broker's model on a shared sample.
	for i := 0; i < numTrain; i++ {
		m := w.Event(uint64(i + 1))
		for b := 0; b < numBrokers; b++ {
			net.Broker(b).Model().Observe(m)
		}
	}
	for i := 0; i < numSubs; i++ {
		s, err := w.Subscription(uint64(i+1), fmt.Sprintf("client-%d", i+1))
		if err != nil {
			return 0, 0, 0, err
		}
		if err := net.SubscribeAt(i%numBrokers, s); err != nil {
			return 0, 0, 0, err
		}
	}
	if prune {
		// Two ranked pruning steps per still-prunable subscription — around
		// 60% of each broker's possible prunings.
		for b := 0; b < numBrokers; b++ {
			prunings += net.Broker(b).Prune(net.Broker(b).PruneRemaining() * 2)
		}
	}
	net.ResetTraffic()
	for i := 0; i < numEvents; i++ {
		dels, err := net.PublishAt(i%numBrokers, w.Event(uint64(numTrain+i+1)))
		if err != nil {
			return 0, 0, 0, err
		}
		deliveries += len(dels)
	}
	return net.Traffic().PublishFrames, prunings, deliveries, nil
}
