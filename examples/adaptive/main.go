// Adaptive: drive pruning with the controller from the paper's future-work
// section — the dimension follows observed system pressure, and AutoPrune
// finds a good stopping point by measuring filter latency.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"dimprune"
)

const assocBudget = 6000

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	w, err := dimprune.NewWorkload(dimprune.DefaultWorkloadConfig())
	if err != nil {
		return err
	}
	ps, err := dimprune.NewEmbedded(dimprune.EmbeddedConfig{Dimension: dimprune.Throughput})
	if err != nil {
		return err
	}
	ctrl, err := dimprune.NewAdaptiveController(ps, dimprune.AdaptivePolicy{})
	if err != nil {
		return err
	}
	for i := 0; i < 2000; i++ {
		ps.Model().Observe(w.Event(uint64(i + 1)))
	}

	fmt.Printf("association budget: %d\n\n", assocBudget)
	fmt.Printf("%-26s %10s %12s %12s %10s\n", "phase", "subs", "assocs", "dimension", "pruned")

	// Phase 1: light load — the policy stays on the default dimension.
	subID := uint64(0)
	grow := func(n int) error {
		for i := 0; i < n; i++ {
			subID++
			s, err := w.Subscription(subID, fmt.Sprintf("client-%d", subID))
			if err != nil {
				return err
			}
			if _, err := ps.Subscribe(s.Subscriber, s.Root); err != nil {
				return err
			}
		}
		return nil
	}
	tick := func(phase string, util float64, batch int) error {
		st := ps.Stats()
		dim, pruned, err := ctrl.Tick(dimprune.Signals{
			Associations:      st.Associations,
			AssociationBudget: assocBudget,
			LinkUtilization:   util,
		}, batch)
		if err != nil {
			return err
		}
		st = ps.Stats()
		fmt.Printf("%-26s %10d %12d %12s %10d\n",
			phase, st.LocalSubs+st.RemoteSubs, st.Associations, dim, pruned)
		return nil
	}

	if err := grow(500); err != nil {
		return err
	}
	if err := tick("steady state", 0.2, 200); err != nil {
		return err
	}

	// Phase 2: subscription storm — associations blow past the budget and
	// the controller flips to memory-based pruning.
	if err := grow(1500); err != nil {
		return err
	}
	if err := tick("subscription storm", 0.2, 2500); err != nil {
		return err
	}

	// Phase 3: congested uplink — bandwidth pressure flips it to
	// network-based pruning (memory is back under budget).
	if err := tick("congested uplink", 0.95, 200); err != nil {
		return err
	}

	// Finally, AutoPrune decides how much more pruning actually helps by
	// probing filter latency on a sample of events.
	probe := w.Events(100000, 300)
	measure := func() time.Duration {
		start := time.Now()
		for _, m := range probe {
			if _, err := ps.Publish(m); err != nil {
				return time.Hour
			}
		}
		return time.Since(start)
	}
	applied, err := dimprune.AutoPrune(ps, measure, 250, 2)
	if err != nil {
		return err
	}
	st := ps.Stats()
	fmt.Printf("\nAutoPrune applied %d further prunings (now %d associations, %d total prunings)\n",
		applied, st.Associations, st.PruningsDone)
	fmt.Printf("controller switched dimensions %d times\n", ctrl.Switches())
	return nil
}
