// Auction: run the paper's online book-auction workload through a single
// broker and compare the three pruning dimensions at the same pruning
// budget — a miniature of Fig 1(a)–(c).
//
//	go run ./examples/auction
package main

import (
	"fmt"
	"log"
	"time"

	"dimprune"
)

const (
	numSubs   = 3000
	numTrain  = 2000
	numEvents = 2000
	budget    = 2500 // prunings to apply per dimension
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("auction workload: %d subscriptions, %d events, %d prunings per dimension\n\n",
		numSubs, numEvents, budget)
	fmt.Printf("%-12s %14s %14s %14s %14s\n",
		"dimension", "time/event", "matches/event", "assoc before", "assoc after")

	for _, dim := range []dimprune.Dimension{dimprune.Network, dimprune.Throughput, dimprune.Memory} {
		if err := runDimension(dim); err != nil {
			return err
		}
	}
	fmt.Println("\nnetwork-based pruning keeps matching tight; memory-based cuts the table")
	fmt.Println("hardest but matches far more events — the paper's §4.2 trade-off.")
	return nil
}

func runDimension(dim dimprune.Dimension) error {
	w, err := dimprune.NewWorkload(dimprune.DefaultWorkloadConfig())
	if err != nil {
		return err
	}
	ps, err := dimprune.NewEmbedded(dimprune.EmbeddedConfig{Dimension: dim})
	if err != nil {
		return err
	}
	// Train the selectivity model so Δ≈sel ratings are informed.
	for i := 0; i < numTrain; i++ {
		ps.Model().Observe(w.Event(uint64(i + 1)))
	}
	for i := 0; i < numSubs; i++ {
		s, err := w.Subscription(uint64(i+1), fmt.Sprintf("client-%d", i+1))
		if err != nil {
			return err
		}
		if _, err := ps.Subscribe(s.Subscriber, s.Root); err != nil {
			return err
		}
	}
	before := ps.Stats().Associations
	ps.Prune(budget)

	matches := 0
	start := time.Now()
	for i := 0; i < numEvents; i++ {
		n, err := ps.Publish(w.Event(uint64(numTrain + i + 1)))
		if err != nil {
			return err
		}
		matches += n
	}
	elapsed := time.Since(start)
	after := ps.Stats().Associations

	fmt.Printf("%-12s %14v %14.2f %14d %14d\n",
		dim, elapsed/time.Duration(numEvents),
		float64(matches)/float64(numEvents), before, after)
	return nil
}
