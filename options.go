package dimprune

import "dimprune/internal/delivery"

// Policy decides what a subscription's delivery queue does when its
// consumer falls behind the buffer; see the Handle documentation.
type Policy = delivery.Policy

// Backpressure policies.
const (
	// Block makes Publish wait until the subscription's queue has room.
	// Backpressure propagates to the publishing goroutine only — never to
	// the matching lock — so a blocked consumer still cannot stall other
	// publishers or the control plane.
	Block = delivery.Block
	// DropOldest evicts the oldest queued notification to admit the new
	// one; Publish never waits and the consumer sees the newest window.
	DropOldest = delivery.DropOldest
	// DropNewest discards the new notification when the queue is full;
	// Publish never waits and the consumer sees the oldest backlog.
	DropNewest = delivery.DropNewest
)

// DefaultBuffer is the per-subscription queue capacity used when
// WithBuffer is not given.
const DefaultBuffer = 64

// subOptions collects the per-subscription settings of one Subscribe call.
type subOptions struct {
	subscriber string
	callback   func(Notification)
	buffer     int
	policy     Policy
}

func defaultSubOptions() subOptions {
	return subOptions{buffer: DefaultBuffer, policy: Block}
}

// SubOption configures one subscription at registration time.
type SubOption func(*subOptions)

// WithSubscriber names the subscriber the subscription belongs to
// (diagnostics, Stats, Notification.Subscriber). Default: "".
func WithSubscriber(name string) SubOption {
	return func(o *subOptions) { o.subscriber = name }
}

// WithCallback delivers notifications by invoking fn from the
// subscription's dedicated delivery goroutine, in per-subscription order.
// The handle's channel (Handle.C) is nil in this mode. fn must not call
// Handle.Unsubscribe or Embedded.Close — they wait for the delivery
// goroutine and would deadlock.
func WithCallback(fn func(Notification)) SubOption {
	return func(o *subOptions) { o.callback = fn }
}

// WithBuffer sets the subscription's delivery-queue capacity (minimum 1,
// default DefaultBuffer).
func WithBuffer(n int) SubOption {
	return func(o *subOptions) { o.buffer = n }
}

// WithPolicy sets the subscription's backpressure policy (default Block).
func WithPolicy(p Policy) SubOption {
	return func(o *subOptions) { o.policy = p }
}
