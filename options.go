package dimprune

import "dimprune/internal/delivery"

// Policy decides what a subscription's delivery queue does when its
// consumer falls behind the buffer; see the Handle documentation.
type Policy = delivery.Policy

// Backpressure policies.
const (
	// Block makes Publish wait until the subscription's queue has room.
	// Backpressure propagates to the publishing goroutine only — never to
	// the matching lock — so a blocked consumer still cannot stall other
	// publishers or the control plane.
	Block = delivery.Block
	// DropOldest evicts the oldest queued notification to admit the new
	// one; Publish never waits and the consumer sees the newest window.
	DropOldest = delivery.DropOldest
	// DropNewest discards the new notification when the queue is full;
	// Publish never waits and the consumer sees the oldest backlog.
	DropNewest = delivery.DropNewest
	// Persist is the reported policy of durable subscriptions (see
	// WithDurable): notifications replay from the engine's event log until
	// acked, so nothing is shed. It cannot be combined with the drop
	// policies and requires WithDurable.
	Persist = delivery.Persist
	// Synchronous is the reported policy of legacy subscriptions made
	// through the deprecated OnNotify API, which deliver synchronously on
	// the publishing goroutine and have no queue. It is reporting-only and
	// cannot be requested via WithPolicy.
	Synchronous = delivery.Synchronous
)

// DefaultBuffer is the per-subscription queue capacity used when
// WithBuffer is not given.
const DefaultBuffer = 64

// subOptions collects the per-subscription settings of one Subscribe call.
type subOptions struct {
	subscriber string
	callback   func(Notification)
	buffer     int
	policy     Policy
	durable    string
	manualAck  bool
}

func defaultSubOptions() subOptions {
	return subOptions{buffer: DefaultBuffer, policy: Block}
}

// SubOption configures one subscription at registration time.
type SubOption func(*subOptions)

// WithSubscriber names the subscriber the subscription belongs to
// (diagnostics, Stats, Notification.Subscriber). Default: "".
func WithSubscriber(name string) SubOption {
	return func(o *subOptions) { o.subscriber = name }
}

// WithCallback delivers notifications by invoking fn from the
// subscription's dedicated delivery goroutine, in per-subscription order.
// The handle's channel (Handle.C) is nil in this mode. fn must not call
// Handle.Unsubscribe or Embedded.Close — they wait for the delivery
// goroutine and would deadlock.
func WithCallback(fn func(Notification)) SubOption {
	return func(o *subOptions) { o.callback = fn }
}

// WithBuffer sets the subscription's delivery-queue capacity (minimum 1,
// default DefaultBuffer).
func WithBuffer(n int) SubOption {
	return func(o *subOptions) { o.buffer = n }
}

// WithPolicy sets the subscription's backpressure policy (default Block).
func WithPolicy(p Policy) SubOption {
	return func(o *subOptions) { o.policy = p }
}

// WithDurable makes the subscription durable under the given name. The
// engine must have a WAL configured (EmbeddedConfig.WALDir); every
// published event is then logged, and the subscription is fed by replay
// from its durable cursor instead of the live enqueue path. Delivery is
// at-least-once: unacked notifications are redelivered when the durable
// reattaches — after Close, a crash, or a process restart — so consumers
// must be idempotent. A durable handle reports the Persist policy; the
// name persists until Unsubscribe, and only one handle may hold it at a
// time.
//
// In callback mode each notification is acked automatically when the
// callback returns (see WithManualAck). In channel mode acks are always
// explicit: call Handle.Ack with the Notification.Seq once the
// notification is processed.
func WithDurable(name string) SubOption {
	return func(o *subOptions) { o.durable = name }
}

// WithManualAck disables auto-ack for a durable callback subscription:
// the callback (or code downstream of it) must call Handle.Ack itself,
// widening the redelivery window to exactly the unprocessed suffix.
// Channel-mode durable subscriptions are always manual; for
// non-durable subscriptions the option is an error.
func WithManualAck() SubOption {
	return func(o *subOptions) { o.manualAck = true }
}
