package dimprune

import (
	"dimprune/internal/event"
	"dimprune/internal/subscription"
)

// Event model re-exports: events are attribute–value pair messages with
// typed values.

// Message is an event message.
type Message = event.Message

// Value is a typed attribute value.
type Value = event.Value

// EventBuilder assembles messages fluently; see NewEvent.
type EventBuilder = event.Builder

// NewEvent starts building an event message with the given identifier:
//
//	m := dimprune.NewEvent(42).Str("title", "Dune").Num("price", 12.5).Msg()
func NewEvent(id uint64) *EventBuilder { return event.Build(id) }

// Int returns an integer value.
func Int(v int64) Value { return event.Int(v) }

// Float returns a floating-point value.
func Float(v float64) Value { return event.Float(v) }

// Str returns a string value.
func Str(v string) Value { return event.String(v) }

// Bool returns a boolean value.
func Bool(v bool) Value { return event.Bool(v) }

// Subscription language re-exports: Boolean trees in negation normal form
// over attribute–operator–value predicates. A tree evaluates directly
// against a message with Node.Matches — the primitive the delivery plane
// uses for client-side post-filtering (transport handles demultiplex their
// session's events with it) and the reference oracle the engine tests
// compare the counting filter against.

// Subscription is a registered Boolean filter expression.
type Subscription = subscription.Subscription

// Node is a subscription tree node.
type Node = subscription.Node

// Predicate is an attribute–operator–value condition.
type Predicate = subscription.Predicate

// Op enumerates predicate operators.
type Op = subscription.Op

// Parse converts the text subscription syntax into a tree:
//
//	n, err := dimprune.Parse(`(author = "Herbert" or author = "Asimov") and price <= 25`)
func Parse(text string) (*Node, error) { return subscription.Parse(text) }

// MustParse is Parse that panics on error, for known-good literals.
func MustParse(text string) *Node { return subscription.MustParse(text) }

// NewSubscription validates and canonicalizes a subscription.
func NewSubscription(id uint64, subscriber string, root *Node) (*Subscription, error) {
	return subscription.New(id, subscriber, root)
}

// Tree builders.

// And returns a conjunction over the children.
func And(children ...*Node) *Node { return subscription.And(children...) }

// Or returns a disjunction over the children.
func Or(children ...*Node) *Node { return subscription.Or(children...) }

// Not returns the complement, pushed to negation normal form.
func Not(n *Node) *Node { return subscription.Not(n) }

// Eq returns attr = v.
func Eq(attr string, v Value) *Node { return subscription.Eq(attr, v) }

// Ne returns attr != v (attribute must be present).
func Ne(attr string, v Value) *Node { return subscription.Ne(attr, v) }

// Lt returns attr < v.
func Lt(attr string, v Value) *Node { return subscription.Lt(attr, v) }

// Le returns attr <= v.
func Le(attr string, v Value) *Node { return subscription.Le(attr, v) }

// Gt returns attr > v.
func Gt(attr string, v Value) *Node { return subscription.Gt(attr, v) }

// Ge returns attr >= v.
func Ge(attr string, v Value) *Node { return subscription.Ge(attr, v) }

// HasPrefix returns a string-prefix predicate.
func HasPrefix(attr, prefix string) *Node { return subscription.Prefix(attr, prefix) }

// HasSuffix returns a string-suffix predicate.
func HasSuffix(attr, suffix string) *Node { return subscription.Suffix(attr, suffix) }

// Contains returns a substring predicate.
func Contains(attr, substr string) *Node { return subscription.Contains(attr, substr) }

// Exists returns an attribute-presence predicate.
func Exists(attr string) *Node { return subscription.Exists(attr) }
