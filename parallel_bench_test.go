package dimprune

// Concurrent-throughput benchmarks for the parallel publish pipeline.
//
// BenchmarkPublishParallel is the perf-trajectory headline: one publishing
// goroutine drives an Embedded instance loaded with the auction workload,
// and the match worker/shard layout varies. Speedup here is pure intra-match
// fan-out — the gain the filter engine's sharded counting phase delivers on
// a single hot publisher.
//
// BenchmarkPublishConcurrentPublishers measures the other axis: GOMAXPROCS
// publishing goroutines against a serial-match engine. Speedup here is the
// data-plane RWMutex split — concurrent matches with per-call scratch.

import (
	"fmt"
	"sync/atomic"
	"testing"

	"dimprune/internal/event"
	"dimprune/internal/workload"
)

// benchEmbedded builds an Embedded instance with nSubs subscriptions of
// the named workload and returns it with a pre-generated event stream.
func benchEmbedded(b *testing.B, wl string, workers, shards, nSubs, nEvents int) (*Embedded, []*event.Message) {
	b.Helper()
	ps, err := NewEmbedded(EmbeddedConfig{
		MatchWorkers:    workers,
		Shards:          shards,
		DisableLearning: true, // isolate matching; the model has its own lock
	})
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.New(wl, 1)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < nSubs; i++ {
		s, err := gen.Subscription(uint64(i+1), fmt.Sprintf("s%d", i))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ps.Subscribe(s.Subscriber, s.Root); err != nil {
			b.Fatal(err)
		}
	}
	return ps, gen.Events(1, nEvents)
}

// BenchmarkPublishParallel sweeps the worker/shard layout with a single
// publisher, for every registered workload scenario — the per-workload
// perf trajectory (BENCH_5.json, re-measured by the CI bench-workloads
// job). events/sec at workers=4 or 8 versus workers=1 is the acceptance
// ratio recorded in CHANGES.md; the cross-workload spread shows how
// match cost depends on predicate shape (ticker's hot symbols match an
// order of magnitude more entries per event than sensornet's
// high-cardinality alert trees).
func BenchmarkPublishParallel(b *testing.B) {
	layouts := []struct{ workers, shards int }{
		{1, 1},
		{1, 16},
		{4, 16},
		{8, 16},
	}
	const nSubs = 20000
	for _, wl := range workload.Names() {
		for _, l := range layouts {
			b.Run(fmt.Sprintf("workload=%s/workers=%d/shards=%d", wl, l.workers, l.shards), func(b *testing.B) {
				ps, events := benchEmbedded(b, wl, l.workers, l.shards, nSubs, 4096)
				var sink atomic.Uint64
				ps.OnNotify(func(Notification) { sink.Add(1) })
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ps.Publish(events[i%len(events)]); err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				if sink.Load() == 0 {
					b.Fatal("benchmark workload matched nothing")
				}
			})
		}
	}
}

// BenchmarkPublishBatch measures the batched hot path at the same scale.
func BenchmarkPublishBatch(b *testing.B) {
	const nSubs = 20000
	const batch = 64
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			shards := 1
			if workers > 1 {
				shards = 16
			}
			ps, events := benchEmbedded(b, "auction", workers, shards, nSubs, 4096)
			b.ResetTimer()
			for i := 0; i < b.N; i += batch {
				lo := i % (len(events) - batch)
				if _, err := ps.PublishBatch(events[lo : lo+batch]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPublishConcurrentPublishers drives a serial-match engine from
// GOMAXPROCS goroutines: cross-call concurrency through the shared data
// plane, no intra-match fan-out.
func BenchmarkPublishConcurrentPublishers(b *testing.B) {
	const nSubs = 20000
	ps, events := benchEmbedded(b, "auction", 1, 1, nSubs, 4096)
	var n atomic.Uint64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			i := n.Add(1)
			if _, err := ps.Publish(events[int(i)%len(events)]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
