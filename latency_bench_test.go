package dimprune

// BENCH_9: tail-latency accounting for the networked overlay. Each
// iteration publishes one event at the head of a five-broker TCP line
// whose only subscriber sits four hops away; the chaos sink stamps
// publish and delivery, and the benchmark reports p50/p99 end-to-end
// latency as custom metrics. The linkloss leg bounces a mid-line link
// once per run: the jittered redial heals it in tens of milliseconds, so
// the p99 must stay bounded (and the delivered fraction reports how much
// the outage cost). Compare against BENCH_9.json; CI re-measures via the
// chaos job.

import (
	"testing"
	"time"

	"dimprune/internal/chaos"
	"dimprune/internal/event"
	"dimprune/internal/simnet"
	"dimprune/internal/subscription"
	"dimprune/internal/transport"
)

func BenchmarkOverlayLatency(b *testing.B) {
	transport.SetRedialJitterSeed(9)
	for _, loss := range []bool{false, true} {
		name := "healthy"
		if loss {
			name = "linkloss"
		}
		b.Run(name, func(b *testing.B) {
			h, err := chaos.New(chaos.Config{Edges: simnet.LineEdges(5)})
			if err != nil {
				b.Fatal(err)
			}
			defer h.Close()
			sub, err := subscription.New(1, "sink", subscription.MustParse("v exists"))
			if err != nil {
				b.Fatal(err)
			}
			if err := h.SubscribeAt(4, sub); err != nil {
				b.Fatal(err)
			}
			// Wait for the subscription to propagate all four hops.
			deadline := time.Now().Add(10 * time.Second)
			for h.Server(0).Stats().RemoteSubs == 0 {
				if time.Now().After(deadline) {
					b.Fatal("subscription never reached the far broker")
				}
				time.Sleep(2 * time.Millisecond)
			}

			sink := h.Sink()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Skip the bounce on the framework's N=1 sizing run — it
				// would sever the link before the only event.
				if loss && b.N > 1 && i == b.N/2 {
					h.BounceEdge(2, 3)
				}
				if err := h.PublishAt(0, event.Build(uint64(i+1)).Int("v", int64(i)).Msg()); err != nil {
					b.Fatal(err)
				}
				// Pace the stream: tail latency of a drowning pipe measures
				// queueing, not the overlay.
				time.Sleep(200 * time.Microsecond)
			}
			// Drain: wait until deliveries stop arriving (events in flight
			// during the bounce may be legitimately lost).
			last := -1
			for settle := 0; settle < 20; {
				cur := sink.Total()
				if cur == last {
					settle++
				} else {
					settle = 0
					last = cur
				}
				time.Sleep(10 * time.Millisecond)
			}
			b.StopTimer()
			s := sink.E2E()
			if s.Count == 0 {
				b.Fatal("no deliveries recorded")
			}
			b.ReportMetric(float64(s.Quantile(0.5).Nanoseconds()), "p50-ns")
			b.ReportMetric(float64(s.Quantile(0.99).Nanoseconds()), "p99-ns")
			b.ReportMetric(float64(s.Count)/float64(b.N), "delivered/op")
			// A single transient link loss must not take out the bulk of the
			// stream: everything before the bounce and everything after the
			// redial heals must land.
			if loss && s.Count < uint64(b.N)/4 {
				b.Fatalf("single-link loss dropped most of the stream: %d/%d delivered", s.Count, b.N)
			}
		})
	}
}
